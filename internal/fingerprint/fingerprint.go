// Package fingerprint implements the KNN fallback plane of the
// degradation ladder (DESIGN.md §16): a site-survey database of
// per-anchor RSSI signatures on a reference grid, matched against
// median+EWMA-filtered live RSSI with weighted K-nearest-neighbor
// interpolation.
//
// Fingerprinting is the industry-standard CSI-free localization
// baseline: it needs no phase coherence, no reference anchor and no
// per-round quorum beyond "some anchors heard the tag", so it keeps
// working in exactly the regimes where BLoc's CSI pipeline degrades —
// unmet quorums, quarantined or silent reference anchors, overload
// demotion and dead cells. Its accuracy sits between the CSI grid
// search (decimeters) and the RSSI-trilateration centroid floor
// (room-scale): the survey grid memorizes the deployment's real
// multipath field instead of assuming the free-space path-loss model
// trilateration needs.
//
// Signatures are partial-match friendly: a live signature may carry
// NaN for anchors that did not report this round, and lookup distances
// are normalized per overlapping anchor, so a two-anchor observation
// still ranks reference points fairly.
package fingerprint

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bloc/internal/csi"
	"bloc/internal/geom"
)

// MaxPoints bounds a database's reference grid; a forged file cannot
// demand a larger allocation (the codec enforces it too).
const MaxPoints = 16384

// MaxAnchors bounds the per-point signature width (the wire protocol's
// anchor ID space).
const MaxAnchors = 256

// RefPoint is one surveyed reference location: its position and the
// median filtered RSSI (dB) each anchor observed there. NaN marks an
// anchor that never produced a usable sample at this point.
type RefPoint struct {
	Pos  geom.Point
	RSSI []float64 // len == DB.Anchors, dB
}

// DB is a site-survey fingerprint database.
type DB struct {
	Room    geom.Rect
	Anchors int
	StepM   float64 // survey grid pitch, informational
	Points  []RefPoint
}

// Validate checks the structural invariants the codec and Survey
// promise: a sane room, a bounded grid, full-width signatures and
// finite-or-NaN dB values.
func (db *DB) Validate() error {
	if db.Anchors < 1 || db.Anchors > MaxAnchors {
		return fmt.Errorf("fingerprint: %d anchors outside [1,%d]", db.Anchors, MaxAnchors)
	}
	if len(db.Points) == 0 {
		return errors.New("fingerprint: empty reference grid")
	}
	if len(db.Points) > MaxPoints {
		return fmt.Errorf("fingerprint: %d reference points exceed limit %d", len(db.Points), MaxPoints)
	}
	if !(db.Room.Width() > 0 && db.Room.Height() > 0) { // NaN-proof
		return fmt.Errorf("fingerprint: degenerate room %v", db.Room)
	}
	if db.StepM < 0 || math.IsNaN(db.StepM) || math.IsInf(db.StepM, 0) {
		return fmt.Errorf("fingerprint: bad grid step %v", db.StepM)
	}
	for i, p := range db.Points {
		if len(p.RSSI) != db.Anchors {
			return fmt.Errorf("fingerprint: point %d has %d signature entries, want %d", i, len(p.RSSI), db.Anchors)
		}
		if math.IsNaN(p.Pos.X) || math.IsNaN(p.Pos.Y) || math.IsInf(p.Pos.X, 0) || math.IsInf(p.Pos.Y, 0) {
			return fmt.Errorf("fingerprint: point %d at non-finite position", i)
		}
		for a, v := range p.RSSI {
			if math.IsNaN(v) {
				continue // legitimately unobserved
			}
			if math.IsInf(v, 0) || v < -250 || v > 100 {
				return fmt.Errorf("fingerprint: point %d anchor %d has implausible RSSI %v dB", i, a, v)
			}
		}
	}
	return nil
}

// Signature extracts the per-anchor RSSI signature (dB) from one CSI
// snapshot: the mean |h| over the anchor's present bands and antennas,
// in the same units the survey recorded. Anchors with no present band
// (or no finite tone) get NaN — the partial-signature marker Locate
// understands.
func Signature(snap *csi.Snapshot) []float64 {
	anchors := snap.NumAnchors()
	sig := make([]float64, anchors)
	for i := range sig {
		sum, n := 0.0, 0
		for k := range snap.Bands {
			if !snap.Present(k, i) {
				continue
			}
			for _, h := range snap.Tag[k][i] {
				amp := cmplxAbs(h)
				if math.IsNaN(amp) || math.IsInf(amp, 0) || amp <= 0 {
					continue
				}
				sum += amp
				n++
			}
		}
		if n == 0 {
			sig[i] = math.NaN()
			continue
		}
		sig[i] = 20 * math.Log10(sum/float64(n))
	}
	return sig
}

func cmplxAbs(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

// LookupOptions tunes a KNN lookup. The zero value selects the
// documented defaults.
type LookupOptions struct {
	// K is how many nearest reference points are blended (default 4).
	K int
	// MinAnchors is the minimum number of anchors that must be finite in
	// BOTH the live signature and a reference point for that point to be
	// comparable; lookups observing fewer anchors fail (default 2).
	MinAnchors int
}

func (o LookupOptions) withDefaults() LookupOptions {
	if o.K <= 0 {
		o.K = 4
	}
	if o.MinAnchors <= 0 {
		o.MinAnchors = 2
	}
	return o
}

// ErrNoMatch is returned when the live signature overlaps too few
// anchors with every reference point — the fingerprint rung cannot
// serve this round and the caller should fall to the next rung.
var ErrNoMatch = errors.New("fingerprint: signature overlaps too few anchors with the survey")

// Locate runs a weighted-KNN lookup with the default options.
func (db *DB) Locate(sig []float64) (geom.Point, error) {
	return db.LocateOpts(sig, LookupOptions{})
}

// LocateOpts matches a live signature against the reference grid:
// reference points are ranked by RMS dB distance over the anchors both
// sides observed (partial signatures compare fairly because the
// distance is normalized per overlapping anchor), and the K nearest
// positions are blended with inverse-distance weights. Ties rank by
// grid order, so equal inputs return bit-equal fixes.
func (db *DB) LocateOpts(sig []float64, opts LookupOptions) (geom.Point, error) {
	opts = opts.withDefaults()
	if len(sig) != db.Anchors {
		return geom.Point{}, fmt.Errorf("fingerprint: signature width %d, survey has %d anchors", len(sig), db.Anchors)
	}
	type match struct {
		idx  int
		dist float64
	}
	matches := make([]match, 0, len(db.Points))
	for idx, rp := range db.Points {
		sumSq, overlap := 0.0, 0
		for a := 0; a < db.Anchors; a++ {
			lv, rv := sig[a], rp.RSSI[a]
			if math.IsNaN(lv) || math.IsNaN(rv) {
				continue
			}
			d := lv - rv
			sumSq += d * d
			overlap++
		}
		if overlap < opts.MinAnchors {
			continue
		}
		matches = append(matches, match{idx: idx, dist: math.Sqrt(sumSq / float64(overlap))})
	}
	if len(matches) == 0 {
		return geom.Point{}, ErrNoMatch
	}
	sort.Slice(matches, func(i, j int) bool {
		//lint:ignore floateq deterministic tie-break needs the exact compare
		if matches[i].dist != matches[j].dist {
			return matches[i].dist < matches[j].dist
		}
		return matches[i].idx < matches[j].idx
	})
	k := opts.K
	if k > len(matches) {
		k = len(matches)
	}
	// Inverse-distance weights with a floor: an exact signature match
	// must not divide by zero, and a small floor keeps the blend from
	// collapsing onto one grid point under measurement noise.
	const distFloorDB = 0.25
	var wsum, x, y float64
	for _, m := range matches[:k] {
		w := 1 / (m.dist + distFloorDB)
		p := db.Points[m.idx].Pos
		wsum += w
		x += w * p.X
		y += w * p.Y
	}
	return geom.Pt(x/wsum, y/wsum), nil
}

// FilterOptions tunes the live-RSSI filter. The zero value selects the
// documented defaults.
type FilterOptions struct {
	// Window is the median window length in rounds (default 5).
	Window int
	// Alpha is the EWMA smoothing weight applied to the rolling median
	// (default 0.5; 1 disables smoothing).
	Alpha float64
}

func (o FilterOptions) withDefaults() FilterOptions {
	if o.Window <= 0 {
		o.Window = 5
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.5
	}
	return o
}

// Filter is the per-tag live-RSSI conditioning pipeline the SNIPPETS
// exemplars ship: a short per-anchor median window knocks out
// single-round outliers (a burst of constructive multipath, one bad
// gain step), then an EWMA smooths the medians across rounds. Not safe
// for concurrent use; embedders keep one Filter per tag under their
// own lock.
type Filter struct {
	opts FilterOptions
	hist [][]float64 // per anchor, most recent last, NaN-free
	ewma []float64
	warm []bool
}

// NewFilter builds a filter for the given signature width.
func NewFilter(anchors int, opts FilterOptions) *Filter {
	f := &Filter{
		opts: opts.withDefaults(),
		hist: make([][]float64, anchors),
		ewma: make([]float64, anchors),
		warm: make([]bool, anchors),
	}
	return f
}

// Observe feeds one round's raw signature (NaN entries are skipped —
// that anchor just did not report this round).
func (f *Filter) Observe(sig []float64) {
	for a := 0; a < len(f.hist) && a < len(sig); a++ {
		v := sig[a]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		h := append(f.hist[a], v)
		if len(h) > f.opts.Window {
			h = h[len(h)-f.opts.Window:]
		}
		f.hist[a] = h
		med := median(h)
		if !f.warm[a] {
			f.ewma[a] = med
			f.warm[a] = true
		} else {
			f.ewma[a] = f.opts.Alpha*med + (1-f.opts.Alpha)*f.ewma[a]
		}
	}
}

// Signature returns the filtered signature: per-anchor EWMA of the
// rolling median, NaN for anchors never observed.
func (f *Filter) Signature() []float64 {
	out := make([]float64, len(f.hist))
	for a := range out {
		if f.warm[a] {
			out[a] = f.ewma[a]
		} else {
			out[a] = math.NaN()
		}
	}
	return out
}

// median of a non-empty slice (input is not modified).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return 0.5 * (s[n/2-1] + s[n/2])
}

// SurveyOptions tunes offline survey generation. The zero value selects
// the documented defaults.
type SurveyOptions struct {
	// StepM is the reference grid pitch in meters (default 0.5).
	StepM float64
	// Margin insets the grid from the walls (default 0.25 m) — anchors
	// sit on walls and a reference point inside one is meaningless.
	Margin float64
	// Samples is how many independent soundings are medianed per
	// reference point (default 3).
	Samples int
}

func (o SurveyOptions) withDefaults() SurveyOptions {
	if o.StepM <= 0 {
		o.StepM = 0.5
	}
	//lint:ignore floateq unset option sentinel is exactly zero
	if o.Margin == 0 {
		o.Margin = 0.25
	}
	if o.Margin < 0 {
		o.Margin = 0 // negative margin means "survey up to the walls"
	}
	if o.Samples <= 0 {
		o.Samples = 3
	}
	return o
}

// Survey builds a fingerprint DB by walking a reference grid over the
// room and recording the median signature of several soundings at each
// point. The sounding itself is delegated to the sample callback —
// offline generation forks a deterministic rfsim deployment per
// (point, repetition), a hardware campaign would replay captured
// snapshots — so the survey logic never depends on the radio stack.
func Survey(room geom.Rect, anchors int, sample func(point, rep int, p geom.Point) *csi.Snapshot, opts SurveyOptions) (*DB, error) {
	if anchors < 1 || anchors > MaxAnchors {
		return nil, fmt.Errorf("fingerprint: %d anchors outside [1,%d]", anchors, MaxAnchors)
	}
	o := opts.withDefaults()
	inner := room.Inset(o.Margin)
	if !(inner.Width() > 0 && inner.Height() > 0) {
		return nil, fmt.Errorf("fingerprint: margin %.2f m leaves no surveyable area in %v", o.Margin, room)
	}
	db := &DB{Room: room, Anchors: anchors, StepM: o.StepM}
	idx := 0
	for y := inner.Min.Y; y <= inner.Max.Y+1e-9; y += o.StepM {
		for x := inner.Min.X; x <= inner.Max.X+1e-9; x += o.StepM {
			if len(db.Points) >= MaxPoints {
				return nil, fmt.Errorf("fingerprint: grid exceeds %d points; raise StepM", MaxPoints)
			}
			p := geom.Pt(x, y)
			perAnchor := make([][]float64, anchors)
			for rep := 0; rep < o.Samples; rep++ {
				snap := sample(idx, rep, p)
				if snap == nil {
					continue
				}
				sig := Signature(snap)
				for a := 0; a < anchors && a < len(sig); a++ {
					if !math.IsNaN(sig[a]) {
						perAnchor[a] = append(perAnchor[a], sig[a])
					}
				}
			}
			rssi := make([]float64, anchors)
			for a := range rssi {
				if len(perAnchor[a]) == 0 {
					rssi[a] = math.NaN()
					continue
				}
				rssi[a] = median(perAnchor[a])
			}
			db.Points = append(db.Points, RefPoint{Pos: p, RSSI: rssi})
			idx++
		}
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}
