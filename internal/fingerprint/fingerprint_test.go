package fingerprint

import (
	"bytes"
	"math"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// surveyedDeployment builds a small paper deployment plus its survey DB
// with deterministic forking: survey soundings and live soundings use
// disjoint salt spaces, like bloc-dataset and a live server would.
func surveyedDeployment(t *testing.T) (*testbed.Deployment, *DB) {
	t.Helper()
	dep, err := testbed.Paper(7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Survey(dep.Env.Room, len(dep.Anchors),
		func(point, rep int, p geom.Point) *csi.Snapshot {
			return dep.Fork(0x5E0<<16 | uint64(point)<<4 | uint64(rep)).Sounding(p)
		},
		SurveyOptions{StepM: 0.5, Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	return dep, db
}

func TestSurveyGridCoversRoom(t *testing.T) {
	dep, db := surveyedDeployment(t)
	if db.Anchors != len(dep.Anchors) {
		t.Fatalf("db has %d anchors, deployment %d", db.Anchors, len(dep.Anchors))
	}
	if len(db.Points) < 50 {
		t.Fatalf("suspiciously sparse survey: %d points", len(db.Points))
	}
	inner := dep.Env.Room.Inset(0.25)
	for i, p := range db.Points {
		if !inner.Contains(p.Pos) {
			t.Fatalf("point %d at %v outside the inset room", i, p.Pos)
		}
		for a, v := range p.RSSI {
			if math.IsNaN(v) {
				t.Fatalf("point %d anchor %d unobserved in a clean simulation", i, a)
			}
		}
	}
}

func TestLocateBeatsRoomScale(t *testing.T) {
	dep, db := surveyedDeployment(t)
	// In-room spots: the paper room is origin-centered, [-2.5,2.5]×[-3,3].
	spots := []geom.Point{
		geom.Pt(-1.2, 1.7), geom.Pt(1.6, -2.1), geom.Pt(0.4, 0.3), geom.Pt(2.1, 1.3),
	}
	for i, truth := range spots {
		snap := dep.Fork(0x11FE + uint64(i)).Sounding(truth)
		est, err := db.Locate(Signature(snap))
		if err != nil {
			t.Fatalf("spot %d: %v", i, err)
		}
		if d := est.Dist(truth); d > 2.0 {
			t.Fatalf("spot %d: fingerprint error %.2f m, want < 2 m", i, d)
		}
	}
}

func TestLocatePartialSignature(t *testing.T) {
	dep, db := surveyedDeployment(t)
	truth := geom.Pt(-0.8, 1.4)
	snap := dep.Fork(0x9A21).Sounding(truth)
	sig := Signature(snap)
	// Only two anchors report — below the centroid's 3-anchor floor.
	for a := 2; a < len(sig); a++ {
		sig[a] = math.NaN()
	}
	est, err := db.Locate(sig)
	if err != nil {
		t.Fatalf("partial lookup failed: %v", err)
	}
	if d := est.Dist(truth); d > 3.0 {
		t.Fatalf("2-anchor fingerprint error %.2f m, want < 3 m", d)
	}
	// One anchor is below the overlap floor.
	for a := 1; a < len(sig); a++ {
		sig[a] = math.NaN()
	}
	if _, err := db.Locate(sig); err == nil {
		t.Fatal("1-anchor signature should fail the overlap floor")
	}
}

func TestLocateDeterministic(t *testing.T) {
	dep, db := surveyedDeployment(t)
	snap := dep.Fork(0xD3).Sounding(geom.Pt(1.5, 2.5))
	sig := Signature(snap)
	a, err := db.Locate(sig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Locate(sig)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same signature, different fixes: %v vs %v", a, b)
	}
}

func TestFilterMedianKnocksOutOutlier(t *testing.T) {
	f := NewFilter(2, FilterOptions{Window: 5, Alpha: 1}) // alpha 1: no EWMA, isolate the median
	for i := 0; i < 4; i++ {
		f.Observe([]float64{-50, -60})
	}
	f.Observe([]float64{-10, -60}) // one wild outlier on anchor 0
	sig := f.Signature()
	if sig[0] != -50 {
		t.Fatalf("median let the outlier through: %v", sig[0])
	}
	if sig[1] != -60 {
		t.Fatalf("steady anchor drifted: %v", sig[1])
	}
}

func TestFilterSkipsNaNAndWarmsPerAnchor(t *testing.T) {
	f := NewFilter(3, FilterOptions{})
	f.Observe([]float64{-40, math.NaN(), math.NaN()})
	sig := f.Signature()
	if sig[0] != -40 {
		t.Fatalf("anchor 0 should warm on first sample: %v", sig[0])
	}
	if !math.IsNaN(sig[1]) || !math.IsNaN(sig[2]) {
		t.Fatalf("unobserved anchors should stay NaN: %v", sig)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	_, db := surveyedDeployment(t)
	b, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Anchors != db.Anchors || len(got.Points) != len(db.Points) || got.Room != db.Room {
		t.Fatalf("round trip mangled the header: %+v vs %+v", got, db)
	}
	for i := range db.Points {
		if got.Points[i].Pos != db.Points[i].Pos {
			t.Fatalf("point %d position changed", i)
		}
		for a := range db.Points[i].RSSI {
			if !nanSafeEqual(got.Points[i].RSSI[a], db.Points[i].RSSI[a]) {
				t.Fatalf("point %d anchor %d signature changed", i, a)
			}
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	_, db := surveyedDeployment(t)
	b, err := Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 5, 9, 15, 40, len(b) / 2, len(b) - 2} {
		bad := append([]byte(nil), b...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flip at offset %d decoded cleanly", off)
		}
	}
	if _, err := Decode(b[:10]); err == nil {
		t.Fatal("truncated record decoded cleanly")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty record decoded cleanly")
	}
}

func TestFileRoundTrip(t *testing.T) {
	_, db := surveyedDeployment(t)
	path := t.TempDir() + "/site.fpdb"
	if err := WriteFile(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(db.Points) {
		t.Fatalf("file round trip lost points: %d vs %d", len(got.Points), len(db.Points))
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	good := &DB{
		Room:    geom.NewRect(geom.Pt(0, 0), geom.Pt(5, 6)),
		Anchors: 2,
		Points:  []RefPoint{{Pos: geom.Pt(1, 1), RSSI: []float64{-40, -50}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid db rejected: %v", err)
	}
	bad := *good
	bad.Points = []RefPoint{{Pos: geom.Pt(1, 1), RSSI: []float64{-40}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("short signature accepted")
	}
	bad = *good
	bad.Points = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty grid accepted")
	}
	bad = *good
	bad.Points = []RefPoint{{Pos: geom.Pt(1, 1), RSSI: []float64{-40, math.Inf(1)}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("infinite RSSI accepted")
	}
}
