package radio

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"bloc/internal/ble"
)

func TestApplyChannel(t *testing.T) {
	tx := []complex128{1, 1i, -1}
	h := complex(0.5, 0)
	rotor := cmplx.Rect(1, math.Pi/2) // i
	rx := ApplyChannel(tx, h, rotor)
	want := []complex128{0.5i, -0.5, -0.5i}
	for i := range want {
		if cmplx.Abs(rx[i]-want[i]) > 1e-12 {
			t.Errorf("rx[%d] = %v, want %v", i, rx[i], want[i])
		}
	}
	// Original untouched.
	if tx[0] != 1 {
		t.Error("ApplyChannel modified input")
	}
}

func TestMixAdd(t *testing.T) {
	dst := []complex128{1, 2, 3}
	MixAdd(dst, []complex128{10, 20})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 3 {
		t.Errorf("MixAdd wrong: %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Error("MixAdd with short dst should panic")
		}
	}()
	MixAdd([]complex128{1}, []complex128{1, 2})
}

func TestAWGNStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	iq := make([]complex128, 50000)
	AWGN(iq, 0.3, rng)
	var sumSq float64
	for _, z := range iq {
		sumSq += real(z) * real(z)
	}
	std := math.Sqrt(sumSq / float64(len(iq)))
	if math.Abs(std-0.3) > 0.01 {
		t.Errorf("empirical sigma %v, want 0.3", std)
	}
	// sigma <= 0 is a no-op.
	iq2 := []complex128{1 + 2i}
	AWGN(iq2, 0, rng)
	if iq2[0] != 1+2i {
		t.Error("zero-sigma AWGN modified samples")
	}
}

func TestDetectFindsOffset(t *testing.T) {
	mod := ble.NewModulator(8)
	ref := mod.Modulate(ble.BytesToBits([]byte{0xAA, 0x29, 0x41, 0x76, 0x71, 0x55, 0x0F}))
	// Embed the reference at a known offset inside noise.
	rng := rand.New(rand.NewPCG(2, 2))
	rx := make([]complex128, len(ref)+500)
	AWGN(rx, 0.05, rng)
	h := cmplx.Rect(0.4, 1.9)
	for i, x := range ref {
		rx[137+i] += x * h
	}
	off, corr, err := Detect(rx, ref, 1)
	if err != nil {
		t.Fatal(err)
	}
	if off != 137 {
		t.Errorf("offset = %d, want 137", off)
	}
	if corr < 0.9 {
		t.Errorf("correlation = %v, want > 0.9", corr)
	}
}

func TestDetectCoarseStep(t *testing.T) {
	mod := ble.NewModulator(4)
	ref := mod.Modulate(ble.BytesToBits([]byte{0xAA, 1, 2, 3, 4}))
	rx := make([]complex128, len(ref)+64)
	copy(rx[32:], ref)
	off, _, err := Detect(rx, ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	if off != 32 {
		t.Errorf("coarse offset = %d, want 32 (multiple of step)", off)
	}
}

func TestDetectErrors(t *testing.T) {
	if _, _, err := Detect(make([]complex128, 4), make([]complex128, 8), 1); err == nil {
		t.Error("rx shorter than ref should fail")
	}
	if _, _, err := Detect(make([]complex128, 8), nil, 1); err == nil {
		t.Error("empty ref should fail")
	}
}

func TestDetectAbsentSignalLowCorrelation(t *testing.T) {
	mod := ble.NewModulator(8)
	ref := mod.Modulate(ble.BytesToBits([]byte{0xAA, 0xDE, 0xAD, 0xBE, 0xEF}))
	rng := rand.New(rand.NewPCG(3, 3))
	rx := make([]complex128, len(ref)*3)
	AWGN(rx, 1.0, rng)
	_, corr, err := Detect(rx, ref, 1)
	if err != nil {
		t.Fatal(err)
	}
	if corr > 0.5 {
		t.Errorf("correlation %v on pure noise, want < 0.5", corr)
	}
}

func TestPreambleRef(t *testing.T) {
	ref := PreambleRef(0x8E89BED6, 8)
	if len(ref) != 5*8*8 {
		t.Errorf("len = %d, want %d", len(ref), 5*8*8)
	}
	// Constant envelope (GFSK).
	for i, z := range ref {
		if math.Abs(cmplx.Abs(z)-1) > 1e-12 {
			t.Fatalf("sample %d not unit magnitude", i)
		}
	}
}
