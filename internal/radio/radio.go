// Package radio is the software-radio substrate standing in for the
// paper's USRP N210 frontends (§7): it carries complex baseband waveforms
// from transmitters to receivers through the rfsim channel model, applies
// local-oscillator phase offsets and additive white Gaussian noise at the
// sample level, and provides the packet-detection correlator a passive
// anchor needs to time-align overheard transmissions.
package radio

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand/v2"

	"bloc/internal/ble"
)

// ApplyChannel returns tx scaled by the flat-fading channel h and the LO
// rotor e^{ι(φT−φR)}. Within one 2 MHz BLE band the channel is treated as
// frequency-flat, so a single complex multiply per sample is the exact
// narrowband model.
func ApplyChannel(tx []complex128, h, rotor complex128) []complex128 {
	g := h * rotor
	out := make([]complex128, len(tx))
	for i, x := range tx {
		out[i] = x * g
	}
	return out
}

// MixAdd accumulates src into dst sample-wise (for superimposing signals
// from multiple transmitters). dst must be at least as long as src.
func MixAdd(dst, src []complex128) {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("radio: MixAdd dst %d < src %d", len(dst), len(src)))
	}
	for i, s := range src {
		dst[i] += s
	}
}

// AWGN adds independent complex Gaussian noise with per-component standard
// deviation sigma to every sample, in place.
func AWGN(iq []complex128, sigma float64, rng *rand.Rand) {
	if sigma <= 0 {
		return
	}
	for i := range iq {
		iq[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
}

// Detect finds the sample offset of a known reference waveform inside rx
// by normalized cross-correlation, searching offsets [0, len(rx)−len(ref)].
// It returns the best offset, the peak correlation magnitude in [0, 1],
// and an error if rx is shorter than ref. A correlation near 1 means the
// reference is present under a flat channel; noise and interference lower
// it. searchStep > 1 coarsens the search for speed (1 = exhaustive).
func Detect(rx, ref []complex128, searchStep int) (offset int, corr float64, err error) {
	if len(ref) == 0 {
		return 0, 0, fmt.Errorf("radio: empty reference")
	}
	if len(rx) < len(ref) {
		return 0, 0, fmt.Errorf("radio: rx %d shorter than reference %d", len(rx), len(ref))
	}
	if searchStep < 1 {
		searchStep = 1
	}
	var refEnergy float64
	for _, x := range ref {
		refEnergy += real(x)*real(x) + imag(x)*imag(x)
	}
	best, bestCorr := 0, -1.0
	for off := 0; off+len(ref) <= len(rx); off += searchStep {
		var dot complex128
		var rxEnergy float64
		for i, x := range ref {
			y := rx[off+i]
			dot += y * cmplx.Conj(x)
			rxEnergy += real(y)*real(y) + imag(y)*imag(y)
		}
		den := refEnergy * rxEnergy
		if den <= 0 {
			continue
		}
		c := cmplx.Abs(dot) / math.Sqrt(den)
		if c > bestCorr {
			best, bestCorr = off, c
		}
	}
	if bestCorr < 0 {
		return 0, 0, fmt.Errorf("radio: correlation undefined (zero-energy input)")
	}
	return best, bestCorr, nil
}

// PreambleRef returns the modulated waveform of a packet's preamble and
// access address — the detection prefix a passive anchor correlates
// against to find overheard transmissions without knowing the payload.
func PreambleRef(access ble.AccessAddress, sps int) []complex128 {
	hdr := []byte{access.Preamble(), byte(access), byte(access >> 8), byte(access >> 16), byte(access >> 24)}
	return ble.NewModulator(sps).Modulate(ble.BytesToBits(hdr))
}
