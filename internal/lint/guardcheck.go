package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardCheck turns the acquisition plane's "// guarded by <mutex>"
// comments (PR 1's concurrency contracts) into a machine-checked
// invariant. A struct field whose doc or trailing comment contains
// "guarded by <name>" (the name may be qualified, e.g. Server.mu; only
// the final component is the mutex field) must only be read or written
// from functions that acquire that mutex somewhere in their body — a
// call to <x>.<name>.Lock() or <x>.<name>.RLock() — or whose name ends
// in "Locked" (the caller-holds-the-lock convention).
//
// The check is conservative and intra-procedural: any acquisition
// anywhere in the enclosing function body counts, so it only flags
// functions with no locking on any path. Composite-literal
// initialization (before the value escapes) is not flagged.
var GuardCheck = &Analyzer{
	Name: "guardcheck",
	Doc:  "mutex contracts: fields commented 'guarded by <mu>' are only touched by functions that lock <mu> (or are *Locked)",
	Run:  runGuardCheck,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

func runGuardCheck(p *Pass) {
	if p.Info == nil {
		return
	}
	guards := collectGuards(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			guardCheckFunc(p, guards, fd)
		}
	}
}

// collectGuards maps each guarded field object to its mutex field name.
func collectGuards(p *Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardFromComments(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardFromComments extracts the mutex field name from a field's doc or
// line comment; "Server.mu" style qualifications reduce to "mu".
func guardFromComments(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			spec := m[1]
			if i := strings.LastIndexByte(spec, '.'); i >= 0 {
				spec = spec[i+1:]
			}
			return strings.TrimRight(spec, ".")
		}
	}
	return ""
}

func guardCheckFunc(p *Pass, guards map[*types.Var]string, fd *ast.FuncDecl) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // caller-holds-the-lock convention
	}
	// Which mutexes does this function acquire anywhere in its body?
	acquired := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			acquired[x.Sel.Name] = true
		case *ast.Ident:
			acquired[x.Name] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, guarded := guards[field]
		if !guarded || acquired[mu] {
			return true
		}
		p.Reportf(sel.Sel.Pos(), "%s accesses %q (guarded by %s) but never locks %s",
			fd.Name.Name, field.Name(), mu, mu)
		return true
	})
}
