package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags `go func(){...}()` statements in non-test code whose
// closure body contains no completion signal: no sync.WaitGroup.Done
// call, no channel send or close, and no channel receive (the shape a
// <-ctx.Done() / <-quit cancellation takes). PR 1's acquisition plane
// leans on goroutines that must all be joinable at Close; a fire-and-
// forget goroutine with none of those signals is either a leak or an
// untracked lifetime.
//
// Named-function launches (`go s.acceptLoop()`) are out of scope — the
// signal lives in the callee, which is beyond this intra-procedural
// check.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutine closures must carry a completion signal (WaitGroup.Done, channel send/close, or a cancellation receive)",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !hasCompletionSignal(p, lit.Body) {
				p.Reportf(g.Pos(), "goroutine closure has no completion signal (WaitGroup.Done, channel send/close, or cancellation receive)")
			}
			return true
		})
	}
}

func hasCompletionSignal(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // any receive doubles as a cancellation point
			}
		case *ast.RangeStmt:
			// `for v := range ch` over a channel blocks until the
			// producer closes it — a completion signal in itself.
			if p.Info != nil {
				if typ := p.Info.TypeOf(n.X); typ != nil {
					if _, ok := typ.Underlying().(*types.Chan); ok {
						found = true
					}
				}
			}
		case *ast.CallExpr:
			switch fn := n.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fn.Sel.Name == "Done" && isWaitGroup(p, fn.X) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isWaitGroup reports whether e is a sync.WaitGroup (or pointer to one),
// distinguishing wg.Done() from context.Context's Done() accessor.
func isWaitGroup(p *Pass, e ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	typ := p.Info.TypeOf(e)
	if typ == nil {
		return false
	}
	if ptr, ok := typ.Underlying().(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
