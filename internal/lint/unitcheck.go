package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// UnitCheck guards the frequency bookkeeping of Eq. 10 and Eq. 14: phase
// slopes are computed over absolute frequencies in Hz, and a single
// operand expressed in MHz (a raw "2402"-style literal, or an identifier
// suffixed MHz) silently scales a delay estimate by 10⁶. The analyzer
// flags three shapes:
//
//   - arithmetic or comparison mixing identifiers with different
//     frequency-unit suffixes (Hz, kHz, MHz, GHz);
//   - additive/comparison combination of a *Hz-suffixed value with a raw
//     MHz-scale numeric literal (an integer ≥ 1000 written without an
//     exponent, e.g. 2402);
//   - float-typed function parameters named like a frequency (freq, fc,
//     f0, ...) that lack a unit suffix, so call sites cannot tell which
//     unit they must pass.
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "frequency-unit discipline: no Hz/kHz/MHz/GHz mixing, no raw MHz-scale literals against *Hz values, unit suffixes on frequency parameters",
	Run:  runUnitCheck,
}

// freqUnitSuffixes is checked longest-first so MHz wins over Hz.
var freqUnitSuffixes = []string{"GHz", "MHz", "KHz", "kHz", "Hz"}

// freqUnit returns the canonical frequency unit a name carries as a
// suffix ("" if none). Matching is case-sensitive and longest-first, so
// "fcHz" is Hz while "BandwidthsMHz" is MHz, and "buzz" matches nothing.
func freqUnit(name string) string {
	for _, u := range freqUnitSuffixes {
		if strings.HasSuffix(name, u) {
			if u == "KHz" {
				return "kHz"
			}
			return u
		}
	}
	return ""
}

var unitCheckOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

var unitAdditiveOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runUnitCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				unitCheckBinary(p, n)
			case *ast.FuncDecl:
				unitCheckParams(p, n.Type)
			}
			return true
		})
	}
}

func unitCheckBinary(p *Pass, b *ast.BinaryExpr) {
	if !unitCheckOps[b.Op] {
		return
	}
	ux, uy := exprFreqUnit(p, b.X), exprFreqUnit(p, b.Y)
	if ux != "" && uy != "" && ux != uy {
		p.Reportf(b.OpPos, "frequency-unit mismatch: %s operand %q %s %s operand %q",
			ux, p.ExprString(b.X), b.Op, uy, p.ExprString(b.Y))
		return
	}
	if !unitAdditiveOps[b.Op] {
		return
	}
	if ux != "" && isRawScaleLiteral(b.Y) {
		p.Reportf(b.OpPos, "raw literal %s combined with %s value %q; spell the unit (e.g. 2.402e9 or a *%s constant)",
			p.ExprString(b.Y), ux, p.ExprString(b.X), ux)
	} else if uy != "" && isRawScaleLiteral(b.X) {
		p.Reportf(b.OpPos, "raw literal %s combined with %s value %q; spell the unit (e.g. 2.402e9 or a *%s constant)",
			p.ExprString(b.X), uy, p.ExprString(b.Y), uy)
	}
}

// exprFreqUnit infers the frequency unit an expression carries from the
// suffix of its identifier, selector, called function, or — through
// conversions and unary +/- — its operand.
func exprFreqUnit(p *Pass, e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return freqUnit(e.Name)
	case *ast.SelectorExpr:
		return freqUnit(e.Sel.Name)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return exprFreqUnit(p, e.X)
		}
	case *ast.CallExpr:
		// Conversions like float64(fcHz) keep the operand's unit.
		if p.Info != nil && len(e.Args) == 1 {
			if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() {
				return exprFreqUnit(p, e.Args[0])
			}
		}
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			return freqUnit(fn.Name)
		case *ast.SelectorExpr:
			return freqUnit(fn.Sel.Name)
		}
	}
	return ""
}

// isRawScaleLiteral reports whether e is a bare numeric literal of MHz
// magnitude written without scientific notation — the "2402" style that
// belies a forgotten ×1e6.
func isRawScaleLiteral(e ast.Expr) bool {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return false
	}
	if strings.ContainsAny(lit.Value, "eExXbBoO") {
		return false // exponent or non-decimal literals state their intent
	}
	v, err := strconv.ParseFloat(strings.ReplaceAll(lit.Value, "_", ""), 64)
	if err != nil {
		return false
	}
	return v >= 1000
}

// unitCheckParams flags float-typed parameters that are named like a
// frequency but carry no unit suffix.
func unitCheckParams(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		if !isFloatType(p, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if isFreqName(name.Name) && freqUnit(name.Name) == "" {
				p.Reportf(name.Pos(), "frequency parameter %q lacks a unit suffix (rename to e.g. %sHz)",
					name.Name, name.Name)
			}
		}
	}
}

func isFreqName(n string) bool {
	l := strings.ToLower(n)
	return l == "fc" || l == "f0" || strings.HasPrefix(l, "freq") || strings.Contains(l, "frequency")
}

func isFloatType(p *Pass, t ast.Expr) bool {
	if p.Info == nil {
		return false
	}
	typ := p.Info.TypeOf(t)
	if typ == nil {
		return false
	}
	basic, ok := typ.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
