package lint

import (
	"flag"
	"fmt"
	"io"
	"strings"
)

// Exit codes of the bloc-lint driver.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage, load or type-check failure
)

// Main is the bloc-lint driver: it loads the packages matching the
// pattern arguments (default ./...) relative to dir ("" = current
// directory), runs every analyzer (or the -analyzers subset), prints
// findings to out as file:line:col: [analyzer] message, and returns the
// process exit code. Errors go to errOut.
func Main(out, errOut io.Writer, dir string, args []string) int {
	fs := flag.NewFlagSet("bloc-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var only string
	fs.StringVar(&only, "analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range All {
			fmt.Fprintf(out, "%-11s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	analyzers := All
	if only != "" {
		analyzers = nil
		for _, name := range strings.Split(only, ",") {
			a := ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(errOut, "bloc-lint: unknown analyzer %q\n", name)
				return ExitError
			}
			analyzers = append(analyzers, a)
		}
	}
	pkgs, err := Load(dir, fs.Args())
	if err != nil {
		fmt.Fprintf(errOut, "bloc-lint: %v\n", err)
		return ExitError
	}
	total := 0
	for _, pkg := range pkgs {
		for _, f := range RunPackage(pkg, analyzers) {
			fmt.Fprintln(out, f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(errOut, "bloc-lint: %d finding(s)\n", total)
		return ExitFindings
	}
	return ExitClean
}
