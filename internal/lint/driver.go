package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Exit codes of the bloc-lint driver.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage, load or type-check failure
)

// jsonFinding is the machine-readable rendering of one Finding — the
// schema of -json output and of -baseline files.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document: a SARIF-flavored envelope
// (tool, version, results) kept deliberately small.
type jsonReport struct {
	Tool     string         `json:"tool"`
	Version  int            `json:"version"`
	Findings []jsonFinding  `json:"findings"`
	Facts    []PackageFacts `json:"facts,omitempty"`
}

func toJSONFinding(f Finding) jsonFinding {
	return jsonFinding{
		File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
		Analyzer: f.Analyzer, Message: f.Message,
	}
}

// baselineKey identifies a finding across line-number drift: the file
// base name, the analyzer and the exact message. Editing a file moves
// findings around; only fixing (or rewording) one removes it from the
// baseline's shadow.
func baselineKey(file, analyzer, message string) string {
	return filepath.Base(file) + "\x00" + analyzer + "\x00" + message
}

// loadBaseline reads a -baseline file (the findings list of a previous
// -write-baseline or -json run) into a suppression set.
func loadBaseline(path string) (map[string]bool, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report jsonReport
	if err := json.Unmarshal(buf, &report); err != nil {
		// Also accept a bare findings array.
		if err2 := json.Unmarshal(buf, &report.Findings); err2 != nil {
			return nil, err
		}
	}
	set := make(map[string]bool, len(report.Findings))
	for _, f := range report.Findings {
		set[baselineKey(f.File, f.Analyzer, f.Message)] = true
	}
	return set, nil
}

// Main is the bloc-lint driver: it loads the packages matching the
// pattern arguments (default ./...) relative to dir ("" = current
// directory), runs every analyzer (or the -analyzers subset) in two
// phases — package facts first, checks second — prints findings to out
// as file:line:col: [analyzer] message (or as JSON with -json), and
// returns the process exit code. Errors go to errOut.
//
// -baseline FILE suppresses findings recorded in FILE (incremental
// adoption); -write-baseline FILE records the current findings and
// exits clean; -unused-ignores additionally reports //lint:ignore
// directives that suppress nothing; -facts FILE dumps the package-fact
// store as JSON.
func Main(out, errOut io.Writer, dir string, args []string) int {
	fs := flag.NewFlagSet("bloc-lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		only          = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list          = fs.Bool("list", false, "list analyzers and exit")
		jsonOut       = fs.Bool("json", false, "emit findings as JSON instead of text")
		baselinePath  = fs.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBaseline = fs.String("write-baseline", "", "record current findings to this file and exit clean")
		unusedIgnores = fs.Bool("unused-ignores", false, "also report //lint:ignore directives that suppress nothing")
		factsPath     = fs.String("facts", "", "dump the package-fact store as JSON to this file (\"-\" = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range All {
			fmt.Fprintf(out, "%-11s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	analyzers := All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(errOut, "bloc-lint: unknown analyzer %q\n", name)
				return ExitError
			}
			analyzers = append(analyzers, a)
		}
	}
	pkgs, err := Load(dir, fs.Args())
	if err != nil {
		fmt.Fprintf(errOut, "bloc-lint: %v\n", err)
		return ExitError
	}
	findings, facts := RunPackages(pkgs, analyzers, RunOptions{UnusedIgnores: *unusedIgnores})

	if *factsPath != "" {
		buf, err := json.MarshalIndent(facts, "", "  ")
		if err != nil {
			fmt.Fprintf(errOut, "bloc-lint: encoding facts: %v\n", err)
			return ExitError
		}
		buf = append(buf, '\n')
		if *factsPath == "-" {
			out.Write(buf)
		} else if err := os.WriteFile(*factsPath, buf, 0o644); err != nil {
			fmt.Fprintf(errOut, "bloc-lint: %v\n", err)
			return ExitError
		}
	}

	if *writeBaseline != "" {
		report := jsonReport{Tool: "bloc-lint", Version: 2}
		for _, f := range findings {
			report.Findings = append(report.Findings, toJSONFinding(f))
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(errOut, "bloc-lint: encoding baseline: %v\n", err)
			return ExitError
		}
		if err := os.WriteFile(*writeBaseline, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(errOut, "bloc-lint: %v\n", err)
			return ExitError
		}
		fmt.Fprintf(errOut, "bloc-lint: wrote %d finding(s) to baseline %s\n", len(findings), *writeBaseline)
		return ExitClean
	}

	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(errOut, "bloc-lint: baseline: %v\n", err)
			return ExitError
		}
		kept := findings[:0]
		baselined := 0
		for _, f := range findings {
			if base[baselineKey(f.Pos.Filename, f.Analyzer, f.Message)] {
				baselined++
				continue
			}
			kept = append(kept, f)
		}
		findings = kept
		if baselined > 0 {
			fmt.Fprintf(errOut, "bloc-lint: %d baselined finding(s) suppressed\n", baselined)
		}
	}

	if *jsonOut {
		report := jsonReport{Tool: "bloc-lint", Version: 2, Findings: []jsonFinding{}}
		for _, f := range findings {
			report.Findings = append(report.Findings, toJSONFinding(f))
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(errOut, "bloc-lint: encoding findings: %v\n", err)
			return ExitError
		}
		fmt.Fprintf(out, "%s\n", buf)
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errOut, "bloc-lint: %d finding(s)\n", len(findings))
		return ExitFindings
	}
	return ExitClean
}
