package lint

import (
	"go/ast"
	"go/types"
)

// AtomicCheck guards the all-or-nothing rule of sync/atomic: a struct
// field that is ever accessed through the sync/atomic functions
// (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&s.done), ...) must be
// accessed that way *everywhere* — one plain load or store anywhere
// else silently races with every atomic access, and the race detector
// only catches it if the schedule cooperates. (Fields of the typed
// atomic.Int64/Uint64/... wrappers cannot be misused this way and are
// out of scope; this check exists for the &field style.)
//
// Phase one records every field whose address is passed to a sync/atomic
// function, exporting an "atomic-field" fact keyed "Type.field" so
// downstream packages inherit the contract for exported fields. Phase
// two flags every other selector access to such a field — read, write,
// or alias — that is not itself the operand of a sync/atomic call.
var AtomicCheck = &Analyzer{
	Name:  "atomiccheck",
	Doc:   "fields accessed via sync/atomic anywhere must never be accessed by plain load/store elsewhere",
	Facts: factsAtomicCheck,
	Run:   runAtomicCheck,
}

// atomicFieldUses walks the package and calls seen(selExpr, field) for
// every `&x.f` that is the first argument of a sync/atomic call.
func atomicFieldUses(p *Pass, seen func(sel *ast.SelectorExpr, field *types.Var)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[fun.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := p.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if field, ok := selection.Obj().(*types.Var); ok {
				seen(sel, field)
			}
			return true
		})
	}
}

// atomicFieldKey names a field "Type.field" via its owning struct, found
// by scanning the defining package's named types; empty when the field
// belongs to an unnamed struct.
func atomicFieldKey(field *types.Var) string {
	pkg := field.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return obj.Name() + "." + field.Name()
			}
		}
	}
	return ""
}

func factsAtomicCheck(p *Pass) {
	if p.Info == nil {
		return
	}
	atomicFieldUses(p, func(_ *ast.SelectorExpr, field *types.Var) {
		if key := atomicFieldKey(field); key != "" {
			p.ExportFact("atomic-field", key, "")
		}
	})
}

func runAtomicCheck(p *Pass) {
	if p.Info == nil {
		return
	}
	// Selector expressions that ARE the atomic operand — exempt.
	exempt := make(map[*ast.SelectorExpr]bool)
	// Fields this package itself accesses atomically (covers unexported
	// fields of unnamed structs that facts cannot name).
	local := make(map[*types.Var]bool)
	atomicFieldUses(p, func(sel *ast.SelectorExpr, field *types.Var) {
		exempt[sel] = true
		local[field] = true
	})
	isAtomicField := func(field *types.Var) bool {
		if local[field] {
			return true
		}
		pkg := field.Pkg()
		if pkg == nil {
			return false
		}
		key := atomicFieldKey(field)
		if key == "" {
			return false
		}
		_, ok := p.Fact(pkg.Path(), "atomic-field", key)
		return ok
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			selection, ok := p.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			field, ok := selection.Obj().(*types.Var)
			if !ok || !isAtomicField(field) {
				return true
			}
			name := atomicFieldKey(field)
			if name == "" {
				name = field.Name()
			}
			p.Reportf(sel.Sel.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere — mixed access races", name)
			return true
		})
	}
}
