package fixture

import "sync"

// Goroutines with completion signals the analyzer must not flag.
func tracked() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()

	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done

	quit := make(chan struct{})
	results := make(chan int)
	go func() {
		select {
		case results <- 42:
		case <-quit:
		}
	}()
	close(quit)

	feed := make(chan int, 1)
	feed <- 7
	close(feed)
	go func() {
		for range feed {
		}
	}()
}
