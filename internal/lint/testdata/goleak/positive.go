package fixture

// A fire-and-forget goroutine with no completion signal: nothing joins
// it, nothing can cancel it.
func leak() {
	go func() {
		total := 0
		for i := 0; i < 1000; i++ {
			total += i
		}
		_ = total
	}()
}
