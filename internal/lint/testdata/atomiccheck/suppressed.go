package fixture

import "sync/atomic"

// pool is drained single-threaded in its destructor; the plain read
// there is documented and suppressed.
type pool struct {
	inflight uint64
}

func (p *pool) track() {
	atomic.AddUint64(&p.inflight, 1)
}

func (p *pool) drainLocked() uint64 {
	//lint:ignore atomiccheck destructor runs after all workers joined
	return p.inflight
}
