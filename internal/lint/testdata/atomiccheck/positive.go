package fixture

import "sync/atomic"

// counters mixes atomic and plain access to the same field.
type counters struct {
	accepted uint64
	shed     uint64
}

func (c *counters) admit() {
	atomic.AddUint64(&c.accepted, 1)
}

func (c *counters) snapshot() uint64 {
	return c.accepted // flagged: plain read of an atomically-written field
}

func (c *counters) reset() {
	c.accepted = 0 // flagged: plain write
}
