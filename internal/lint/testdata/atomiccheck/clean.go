package fixture

import "sync/atomic"

// gauge keeps every access to its hot field atomic, and its cold
// field is never touched atomically — both are consistent.
type gauge struct {
	hot  uint64
	cold uint64
}

func (g *gauge) bump() {
	atomic.AddUint64(&g.hot, 1)
}

func (g *gauge) read() uint64 {
	return atomic.LoadUint64(&g.hot)
}

func (g *gauge) coldPath() uint64 {
	g.cold++
	return g.cold
}
