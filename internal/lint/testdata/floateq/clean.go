package fixture

import "math"

// Tolerance-based comparison and integer equality are fine.

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func sameInt(a, b int) bool { return a == b }
