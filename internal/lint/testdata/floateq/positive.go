package fixture

// Bit-exact float comparisons the analyzer must flag.

func sameFloat(a, b float64) bool { return a == b }

func nonzero(z complex128) bool { return z != 0 }
