package fixture

import "time"

// Routing through the seam — and installing time.Now as the seam's
// default *value* — is the contract, not a violation.
func newServer() *Server {
	return &Server{now: time.Now} // value reference, not a call
}

func (s *Server) age(since time.Time) time.Duration {
	return s.now().Sub(since)
}
