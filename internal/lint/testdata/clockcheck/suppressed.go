package fixture

import "time"

// wallClockCadence is deliberate wall-clock use with a documented
// reason; the directive must keep it out of the findings.
func wallClockCadence() *time.Ticker {
	//lint:ignore clockcheck checkpoint cadence is wall-clock by design
	return time.NewTicker(time.Second)
}
