package fixture

import "time"

// Server defines a clock seam, putting the whole package in clockcheck
// scope: every time observation must route through it.
type Server struct {
	now func() time.Time
}

// elapsed goes around the seam twice.
func (s *Server) elapsed(since time.Time) time.Duration {
	start := time.Now() // flagged: direct observation
	_ = start
	return time.Since(since) // flagged: Since reads the wall clock
}

// waitAndTick schedules against the wall clock directly.
func (s *Server) waitAndTick() {
	time.Sleep(time.Millisecond) // flagged
	t := time.NewTimer(time.Second)
	_ = t
	<-time.After(time.Millisecond) // flagged
}
