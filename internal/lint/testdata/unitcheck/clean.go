package fixture

// Unit-disciplined code the analyzer must not flag.

const chanWidthHz = 2e6
const baseHz = 2.402e9

var upper = baseHz + 40*chanWidthHz

func wavelengthM(freqHz float64) float64 { return 3e8 / freqHz }

// A true violation silenced by the suppression convention.
//
//lint:ignore unitcheck demonstrates the //lint:ignore convention
var suppressed = baseHz + 2402
