package fixture

// Deliberate violations of the frequency-unit discipline; the expected
// findings live in expected.golden.

const hopHz = 2e6
const freqMHz = 2402.0

// Mixing MHz and Hz in one expression — the Eq. 10 footgun where a phase
// slope ends up 1e6 off.
var mixed = freqMHz * hopHz

// A raw MHz-scale literal combined with an Hz value.
var shifted = hopHz + 2402

// A frequency parameter whose unit no call site can know.
func phaseSlope(freq float64) float64 { return 2 * freq }
