package fixture

import "sync"

type gauge struct {
	mu sync.Mutex
	v  int // guarded by mu
}

// read locks the contract mutex.
func (g *gauge) read() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// bumpLocked follows the caller-holds-the-lock naming convention.
func (g *gauge) bumpLocked() { g.v++ }

// newGauge initializes via composite literal, which is not an access.
func newGauge() *gauge { return &gauge{v: 1} }
