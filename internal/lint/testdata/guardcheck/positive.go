package fixture

import "sync"

// counter's n carries a machine-checked mutex contract.
type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// bad reads n without ever locking mu.
func (c *counter) bad() int {
	return c.n
}
