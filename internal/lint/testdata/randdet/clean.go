package fixture

import "math/rand/v2"

// The house convention: a seeded PCG stream threaded from the caller.
func seededStream(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0xB10C))
}

func drawFrom(rng *rand.Rand) float64 {
	return rng.Float64() + float64(rng.IntN(37))
}
