package fixture

import "math/rand/v2"

// A documented exception stays suppressed.
func jitterForLogsOnly() float64 {
	//lint:ignore randdet log-line jitter only, never touches results
	return rand.Float64()
}
