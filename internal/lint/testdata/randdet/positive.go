package fixture

import (
	mrand "math/rand"
	"math/rand/v2"
	"time"
)

// Global draws: every one of these pulls from the process-wide source,
// so two runs of the same seed-threaded simulation diverge.
func globalDraws() float64 {
	x := rand.Float64()                // flagged: math/rand/v2 global
	n := rand.IntN(37)                 // flagged
	y := mrand.Float64()               // flagged: math/rand (v1) global
	rand.Shuffle(3, func(i, j int) {}) // flagged
	return x + float64(n) + y
}

// Time-seeded source: structured determinism, nondeterministic seed.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1)) // flagged at the time.Now
}
