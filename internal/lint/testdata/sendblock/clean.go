package fixture

// tryEnqueue sheds when the queue is full. nonblocking by construction.
func (in *ingestor) tryEnqueue(v int) bool {
	select {
	case in.fixes <- v:
		return true
	default:
		return false // select-with-default never blocks
	}
}

// buffered construction outside any nonblocking-marked function, plus a
// blocking worker loop that never claimed the contract.
func newIngestor(depth int) *ingestor {
	return &ingestor{fixes: make(chan int, depth)}
}

func (in *ingestor) worker() {
	for v := range in.fixes {
		_ = v
	}
}
