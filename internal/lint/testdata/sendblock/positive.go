package fixture

import "sync"

type ingestor struct {
	fixes chan int
	wg    sync.WaitGroup
}

// enqueue pushes a sample onto the fix queue. nonblocking: called from
// the packet-ingest hot path.
func (in *ingestor) enqueue(v int) {
	in.fixes <- v // flagged: blocking send in a nonblocking function
}

// drainOne pops a sample. nonblocking contract.
func (in *ingestor) drainOne() int {
	return <-in.fixes // flagged: blocking receive
}

// settle waits for the workers. nonblocking: invoked under the ingest lock.
func (in *ingestor) settle() {
	in.wg.Wait() // flagged: WaitGroup.Wait blocks
}

// fresh builds the queue. nonblocking path.
func fresh() chan int {
	return make(chan int) // flagged: unbuffered channel on a nonblocking path
}
