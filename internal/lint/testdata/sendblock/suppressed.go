package fixture

// flush drains synchronously at shutdown. nonblocking in steady state;
// the teardown send is documented below.
func (in *ingestor) flush(v int) {
	//lint:ignore sendblock teardown path, ingest already quiesced
	in.fixes <- v
}
