package fixture

import "sync"

// popWait re-checks the predicate in a loop, the canonical Cond idiom.
func (q *queue) popWait() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.ready.Wait()
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it
}

// spawnCounted does all the Adds before any goroutine starts.
func spawnCounted(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
