package fixture

// waitOnceForClose waits for exactly one Broadcast fired at shutdown;
// there is no predicate to re-check, which the directive documents.
func (q *queue) waitOnceForClose() {
	q.mu.Lock()
	defer q.mu.Unlock()
	//lint:ignore condcheck single Broadcast at close, no predicate to recheck
	q.ready.Wait()
}
