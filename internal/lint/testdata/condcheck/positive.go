package fixture

import "sync"

type queue struct {
	mu    sync.Mutex
	ready *sync.Cond
	items []int
}

// popOnce checks the predicate only once: a spurious or stale wakeup
// returns with the queue still empty.
func (q *queue) popOnce() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		q.ready.Wait() // flagged: Wait outside a for-loop
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it
}

// spawnAll lets each goroutine register itself — Wait can return before
// any Add has happened.
func spawnAll(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // flagged: Add inside the spawned goroutine
			defer wg.Done()
		}()
	}
	wg.Wait()
}
