package fixture

import "math"

// Deliberate violations of the radian discipline (Eq. 17's steering
// angles are radians).

var thetaDeg = 30.0
var thetaRad = math.Pi / 6

// Degrees handed straight to a radian-taking call.
var sinTheta = math.Sin(thetaDeg)

// Degrees and radians summed.
var total = thetaDeg + thetaRad
