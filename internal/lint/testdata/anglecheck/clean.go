package fixture

import "math"

// Radian-disciplined code the analyzer must not flag.

var phiDeg = 45.0

// Visible deg→rad conversion inside the argument.
var sinPhi = math.Sin(phiDeg * math.Pi / 180)

// Plain radian math.
var cosThird = math.Cos(math.Pi / 3)
