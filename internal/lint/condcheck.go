package lint

import (
	"go/ast"
)

// CondCheck guards the two classic condition-variable and WaitGroup
// protocol bugs that the race detector cannot see (both are "just"
// lost wakeups or miscounts, not data races):
//
//  1. sync.Cond.Wait outside a for-loop. Wait releases the mutex and
//     can wake spuriously or late; the predicate MUST be re-checked in
//     a loop (`for !ready { c.Wait() }`). An if — or no guard at all —
//     proceeds on a stale predicate. The loop must be in the same
//     function: a loop in some caller does not guard the wait.
//  2. sync.WaitGroup.Add inside the goroutine it accounts for. Add must
//     happen before the goroutine is spawned; inside `go func(){...}`
//     it races with the Wait, which can observe the counter at zero and
//     return before the work was ever counted.
var CondCheck = &Analyzer{
	Name: "condcheck",
	Doc:  "sync.Cond.Wait must sit in a for-loop; sync.WaitGroup.Add must not run inside the goroutine it counts",
	Run:  runCondCheck,
}

func runCondCheck(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			condWalk(p, fd.Body, 0, false)
		}
	}
}

// condWalk scans stmts tracking the enclosing for-loop depth and whether
// the walk is inside a go-launched closure. Entering a function literal
// resets the loop depth (an outer loop does not guard an inner
// function's Wait) and entering `go func(){...}` sets the goroutine
// flag for WaitGroup.Add.
func condWalk(p *Pass, n ast.Node, loopDepth int, inGoClosure bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Init != nil {
				condWalk(p, m.Init, loopDepth, inGoClosure)
			}
			if m.Cond != nil {
				condWalk(p, m.Cond, loopDepth, inGoClosure)
			}
			if m.Post != nil {
				condWalk(p, m.Post, loopDepth, inGoClosure)
			}
			condWalk(p, m.Body, loopDepth+1, inGoClosure)
			return false
		case *ast.RangeStmt:
			condWalk(p, m.X, loopDepth, inGoClosure)
			condWalk(p, m.Body, loopDepth+1, inGoClosure)
			return false
		case *ast.GoStmt:
			if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
				condWalk(p, lit.Body, 0, true)
				for _, arg := range m.Call.Args {
					condWalk(p, arg, loopDepth, inGoClosure)
				}
				return false
			}
			return true
		case *ast.FuncLit:
			condWalk(p, m.Body, 0, inGoClosure)
			return false
		case *ast.CallExpr:
			sel, ok := m.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Wait":
				if isSyncType(p, sel.X, "Cond") && loopDepth == 0 {
					p.Reportf(m.Pos(), "sync.Cond.Wait outside a for-loop: spurious or late wakeups proceed on a stale predicate")
				}
			case "Add":
				if inGoClosure && isWaitGroup(p, sel.X) {
					p.Reportf(m.Pos(), "sync.WaitGroup.Add inside the spawned goroutine races with Wait; Add before the go statement")
				}
			}
			return true
		}
		return true
	})
}
