package lint

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the expected.golden files")

// loadFixture parses and type-checks every .go file in dir as one
// package, the same way the driver's loader does for real packages.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fixture", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{ImportPath: "fixture", Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// render prints findings with basenames so goldens are location-stable.
func render(findings []Finding) string {
	var sb strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&sb, "%s:%d:%d: [%s] %s\n",
			filepath.Base(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return sb.String()
}

// TestAnalyzerGoldens runs each analyzer over its fixture directory
// (positive.go with deliberate violations, clean.go without) and
// compares the findings to expected.golden. Run with -update to
// regenerate.
func TestAnalyzerGoldens(t *testing.T) {
	for _, a := range All {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			pkg := loadFixture(t, dir)
			got := render(RunPackage(pkg, []*Analyzer{a}))
			goldenPath := filepath.Join(dir, "expected.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run go test -run Goldens -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
			if !strings.Contains(got, "positive.go") {
				t.Errorf("%s did not flag its positive fixture", a.Name)
			}
			if strings.Contains(got, "clean.go") {
				t.Errorf("%s flagged its clean fixture", a.Name)
			}
			if strings.Contains(got, "suppressed.go") {
				t.Errorf("%s leaked a finding past its //lint:ignore directive", a.Name)
			}
		})
	}
}

// TestIgnoreDirectives exercises the suppression machinery directly:
// same-line and line-above placement, the "all" wildcard, and the
// malformed-directive findings.
func TestIgnoreDirectives(t *testing.T) {
	src := `package p

const aHz = 1.0
const bMHz = 2.0

//lint:ignore unitcheck above-the-line suppression
var x = aHz * bMHz

var y = aHz * bMHz //lint:ignore all same-line wildcard suppression

var z = aHz * bMHz

//lint:ignore unitcheck
var missingReason = aHz * bMHz

//lint:ignore nosuchanalyzer bogus name
var unknownName = aHz * bMHz
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{ImportPath: "p", Fset: fset, Files: []*ast.File{f}}
	findings := RunPackage(pkg, []*Analyzer{UnitCheck})
	var lines []string
	for _, fd := range findings {
		lines = append(lines, fd.String())
	}
	joined := strings.Join(lines, "\n")
	// x and y are suppressed; z plus the two malformed directives and the
	// two findings they failed to suppress remain.
	wantSubstrings := []string{
		"p.go:11:13: [unitcheck]",
		"p.go:13:1: [lint] malformed //lint:ignore",
		"p.go:14:25: [unitcheck]",
		"p.go:16:1: [lint] //lint:ignore names unknown analyzer \"nosuchanalyzer\"",
		"p.go:17:23: [unitcheck]",
	}
	for _, w := range wantSubstrings {
		if !strings.Contains(joined, w) {
			t.Errorf("missing %q in findings:\n%s", w, joined)
		}
	}
	if len(findings) != len(wantSubstrings) {
		t.Errorf("got %d findings, want %d:\n%s", len(findings), len(wantSubstrings), joined)
	}
	for _, w := range []string{":7:", ":9:"} {
		if strings.Contains(joined, "p.go"+w) {
			t.Errorf("suppressed finding at line %s leaked:\n%s", w, joined)
		}
	}
}
