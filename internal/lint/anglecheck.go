package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AngleCheck guards the radian discipline of Eq. 17 (and every steering
// vector in the MUSIC/likelihood pipeline): math.Sin-family functions and
// complex rotors take radians, so a *Deg-suffixed value reaching one
// without a visible ×π/180 conversion is a bug. The analyzer flags:
//
//   - degree-suffixed values flowing into the radian argument of
//     math.Sin/Cos/Tan/Sincos, cmplx.Exp and cmplx.Rect without a
//     conversion marker (math.Pi, a 180 literal, or a Rad()-style call)
//     in the same argument expression;
//   - additive arithmetic or comparison mixing *Deg and *Rad identifiers.
var AngleCheck = &Analyzer{
	Name: "anglecheck",
	Doc:  "radian discipline: no *Deg values into trig/rotor calls, no Deg/Rad mixing",
	Run:  runAngleCheck,
}

// radianArgs maps qualified functions to the indices of their
// radian-typed arguments.
var radianArgs = map[string][]int{
	"math.Sin":        {0},
	"math.Cos":        {0},
	"math.Tan":        {0},
	"math.Sincos":     {0},
	"math/cmplx.Exp":  {0},
	"math/cmplx.Rect": {1},
}

// angleUnit classifies a name as carrying degrees or radians by suffix.
func angleUnit(name string) string {
	switch {
	case strings.HasSuffix(name, "Deg"), strings.HasSuffix(name, "Degrees"),
		name == "deg", name == "degrees":
		return "deg"
	case strings.HasSuffix(name, "Rad"), strings.HasSuffix(name, "Radians"),
		name == "rad", name == "radians":
		return "rad"
	}
	return ""
}

func runAngleCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				angleCheckCall(p, n)
			case *ast.BinaryExpr:
				angleCheckBinary(p, n)
			}
			return true
		})
	}
}

func angleCheckCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok || p.Info == nil {
		return
	}
	pn, ok := p.Info.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	args, ok := radianArgs[pn.Imported().Path()+"."+sel.Sel.Name]
	if !ok {
		return
	}
	for _, idx := range args {
		if idx >= len(call.Args) {
			continue
		}
		arg := call.Args[idx]
		if deg := findDegIdent(arg); deg != "" && !hasRadConversion(arg) {
			p.Reportf(arg.Pos(), "degree-suffixed value %q reaches radian argument of %s.%s without a deg→rad conversion",
				deg, ident.Name, sel.Sel.Name)
		}
	}
}

// findDegIdent returns the first degree-suffixed identifier inside e.
func findDegIdent(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && angleUnit(id.Name) == "deg" {
			found = id.Name
			return false
		}
		return true
	})
	return found
}

// hasRadConversion reports whether e visibly converts degrees to radians:
// it mentions math.Pi, a 180 literal, or calls a function whose name
// signals radians (Rad, DegToRad, Radians...).
func hasRadConversion(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "Pi" {
				found = true
			}
		case *ast.BasicLit:
			if n.Kind == token.INT || n.Kind == token.FLOAT {
				if v := strings.TrimSuffix(n.Value, ".0"); v == "180" {
					found = true
				}
			}
		case *ast.CallExpr:
			name := ""
			switch fn := n.Fun.(type) {
			case *ast.Ident:
				name = fn.Name
			case *ast.SelectorExpr:
				name = fn.Sel.Name
			}
			if angleUnit(name) == "rad" || strings.Contains(name, "Rad") {
				found = true
			}
		}
		return true
	})
	return found
}

func angleCheckBinary(p *Pass, b *ast.BinaryExpr) {
	if !unitAdditiveOps[b.Op] {
		return
	}
	ux, uy := exprAngleUnit(b.X), exprAngleUnit(b.Y)
	if ux != "" && uy != "" && ux != uy {
		p.Reportf(b.OpPos, "angle-unit mismatch: %s operand %q %s %s operand %q",
			ux, p.ExprString(b.X), b.Op, uy, p.ExprString(b.Y))
	}
}

func exprAngleUnit(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return angleUnit(e.Name)
	case *ast.SelectorExpr:
		return angleUnit(e.Sel.Name)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return exprAngleUnit(e.X)
		}
	}
	return ""
}
