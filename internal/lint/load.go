package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir; "" is
// the current directory) via `go list -json -deps`, parses their
// non-test sources and type-checks them from source. Module-internal
// dependencies are resolved against the packages already checked;
// everything else (the standard library) falls back to go/importer's
// source importer. Only the packages matched by the patterns themselves
// — not their dependencies — are returned.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// -deps emits dependencies before dependents, so a single in-order
	// sweep type-checks each package after everything it imports.
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	fset := token.NewFileSet()
	local := make(map[string]*types.Package)
	imp := &chainImporter{local: local, std: importer.ForCompiler(fset, "source", nil)}

	var out []*Package
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Standard {
			continue // resolved by the source importer on demand
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the source loader cannot type-check", lp.ImportPath)
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		local[lp.ImportPath] = tpkg
		if !lp.DepOnly {
			out = append(out, &Package{
				ImportPath: lp.ImportPath,
				Dir:        lp.Dir,
				Fset:       fset,
				Files:      files,
				Types:      tpkg,
				Info:       info,
			})
		}
	}
	return out, nil
}

// chainImporter resolves module-internal imports from the packages
// type-checked so far and defers everything else to the stdlib source
// importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}
