package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// SendBlock machine-checks the ingest path's latency contract: a
// function whose doc comment carries the marker word "nonblocking"
// (locserver.ingest — PR 6 moved localization off the row reader exactly
// so ingest never parks on a channel) must not
//
//   - send on or receive from a channel outside a select with a default,
//   - range over a channel, or select without a default,
//   - call sync.WaitGroup.Wait, sync.Cond.Wait or time.Sleep,
//   - create an unbuffered channel (make(chan T) reachable from a
//     nonblocking path is a rendezvous waiting to happen), or
//   - call any module function that itself may block.
//
// "May block" is propagated over the intra-package call graph to a
// fixpoint in phase one and exported as a "may-block" fact per function,
// so a nonblocking function calling into another package is checked
// against that package's real behavior, not just its signature.
// Blocking calls into the standard library (net reads, etc.) are out of
// scope: the contract covers module code, where the facts are.
var SendBlock = &Analyzer{
	Name:  "sendblock",
	Doc:   "functions marked // nonblocking must not park: no blocking channel ops, no Wait/Sleep, no unbuffered chans, no calls that may block",
	Facts: factsSendBlock,
	Run:   runSendBlock,
}

var nonblockingMarker = regexp.MustCompile(`(^|\W)nonblocking($|\W)`)

// hasNonblockingMarker reports whether a function's doc declares the
// contract.
func hasNonblockingMarker(fd *ast.FuncDecl) bool {
	return fd.Doc != nil && nonblockingMarker.MatchString(fd.Doc.Text())
}

// blockReason is one blocking operation found in a function body.
type blockReason struct {
	pos  token.Pos
	what string
}

// blockingOps collects the blocking operations in body, skipping nested
// function literals (their bodies run on some other goroutine's time).
// Channel operations that are the communication op of a select with a
// default are exempt — that is the nonblocking idiom.
func blockingOps(p *Pass, body *ast.BlockStmt) []blockReason {
	// Comm ops of select statements: exempt when the select has a
	// default, and subsumed by the select's own report when it does not.
	exempt := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			exempt[cc.Comm] = true
			// The received expression inside an assignment comm op.
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					exempt[u] = true
				}
				return true
			})
		}
		return true
	})

	var out []blockReason
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs elsewhere
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				out = append(out, blockReason{n.Pos(), "select without default"})
			}
		case *ast.SendStmt:
			if !exempt[n] {
				out = append(out, blockReason{n.Pos(), "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !exempt[n] {
				out = append(out, blockReason{n.Pos(), "channel receive"})
			}
		case *ast.RangeStmt:
			if p.Info != nil {
				if typ := p.Info.TypeOf(n.X); typ != nil {
					if _, ok := typ.Underlying().(*types.Chan); ok {
						out = append(out, blockReason{n.Pos(), "range over channel"})
					}
				}
			}
		case *ast.CallExpr:
			if what, ok := blockingCallName(p, n); ok {
				out = append(out, blockReason{n.Pos(), what})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// blockingCallName recognizes the stdlib calls that park the caller:
// WaitGroup.Wait, Cond.Wait, time.Sleep.
func blockingCallName(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || p.Info == nil {
		return "", false
	}
	switch sel.Sel.Name {
	case "Wait":
		if isSyncType(p, sel.X, "WaitGroup") {
			return "WaitGroup.Wait", true
		}
		if isSyncType(p, sel.X, "Cond") {
			return "Cond.Wait", true
		}
	case "Sleep":
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			return "time.Sleep", true
		}
	}
	return "", false
}

// isSyncType reports whether e's type is sync.<name> (or pointer to it).
func isSyncType(p *Pass, e ast.Expr, name string) bool {
	typ := p.Info.TypeOf(e)
	if typ == nil {
		return false
	}
	if ptr, ok := typ.Underlying().(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// funcFactName keys a function or method for facts: "Func" or "T.Method".
func funcFactName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// calleeInfo resolves a call to a module function: the *types.Func and,
// when it is a method, its receiver-qualified fact name.
func calleeInfo(p *Pass, call *ast.CallExpr) (*types.Func, string) {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, ""
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok {
		return nil, ""
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		typ := sig.Recv().Type()
		if ptr, ok := typ.(*types.Pointer); ok {
			typ = ptr.Elem()
		}
		if named, ok := typ.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return fn, name
}

// packageMayBlock computes, for every function declared in the package,
// whether it may block: intrinsically, or by calling (to a fixpoint
// within the package, one fact-hop across packages) something that does.
// The map is keyed by fact name.
func packageMayBlock(p *Pass) (blockers map[string]string, decls map[string]*ast.FuncDecl) {
	blockers = make(map[string]string) // fact name → reason
	decls = make(map[string]*ast.FuncDecl)
	calls := make(map[string][]string) // caller fact name → callee fact names (same package)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := funcFactName(fd)
			decls[name] = fd
			if ops := blockingOps(p, fd.Body); len(ops) > 0 {
				blockers[name] = ops[0].what
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, calleeName := calleeInfo(p, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Pkg() == p.Pkg {
					calls[name] = append(calls[name], calleeName)
				} else if reason, ok := p.Fact(fn.Pkg().Path(), "may-block", calleeName); ok {
					if _, have := blockers[name]; !have {
						blockers[name] = fmt.Sprintf("calls %s.%s (%s)", fn.Pkg().Name(), calleeName, reason)
					}
				}
				return true
			})
		}
	}
	// Fixpoint: a caller of a blocker blocks.
	for changed := true; changed; {
		changed = false
		for caller, callees := range calls {
			if _, have := blockers[caller]; have {
				continue
			}
			for _, callee := range callees {
				if reason, ok := blockers[callee]; ok {
					blockers[caller] = fmt.Sprintf("calls %s (%s)", callee, reason)
					changed = true
					break
				}
			}
		}
	}
	return blockers, decls
}

func factsSendBlock(p *Pass) {
	if p.Info == nil {
		return
	}
	blockers, decls := packageMayBlock(p)
	for name, reason := range blockers {
		if fd := decls[name]; fd != nil && fd.Name.IsExported() {
			p.ExportFact("may-block", name, reason)
		}
	}
}

func runSendBlock(p *Pass) {
	if p.Info == nil {
		return
	}
	blockers, _ := packageMayBlock(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNonblockingMarker(fd) {
				continue
			}
			for _, op := range blockingOps(p, fd.Body) {
				p.Reportf(op.pos, "%s in %s, which is marked nonblocking", op.what, fd.Name.Name)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// Unbuffered channel creation on a nonblocking path.
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) == 1 {
					if typ := p.Info.TypeOf(call); typ != nil {
						if _, isChan := typ.Underlying().(*types.Chan); isChan {
							p.Reportf(call.Pos(), "unbuffered make(chan) in %s, which is marked nonblocking", fd.Name.Name)
						}
					}
					return true
				}
				fn, calleeName := calleeInfo(p, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Pkg() == p.Pkg {
					if calleeName == funcFactName(fd) {
						return true // self-recursion: already reported directly
					}
					if reason, ok := blockers[calleeName]; ok {
						p.Reportf(call.Pos(), "%s calls %s, which may block (%s)", fd.Name.Name, calleeName, reason)
					}
				} else if reason, ok := p.Fact(fn.Pkg().Path(), "may-block", calleeName); ok {
					p.Reportf(call.Pos(), "%s calls %s.%s, which may block (%s)", fd.Name.Name, fn.Pkg().Name(), calleeName, reason)
				}
				return true
			})
		}
	}
}
