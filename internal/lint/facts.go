package lint

import (
	"encoding/json"
	"sort"
)

// The fact system turns bloc-lint from a per-package single pass into a
// two-phase whole-program analysis. In phase one every analyzer's Facts
// hook runs over every loaded package (dependencies first — the loader
// preserves `go list -deps` order) and records *facts* about the
// package's API: "this struct field is a clock seam", "this function may
// block on a channel", "this field is only ever accessed atomically".
// In phase two the Run hooks consume the accumulated store, so an
// analyzer checking package B can reason about the contracts package A
// exported — the cross-package reach the single-pass framework lacked.
//
// Facts are deliberately plain strings: an (analyzer, kind, object,
// detail) quadruple per package. That keeps the store trivially
// JSON-serializable (the driver's -facts flag dumps it; the round-trip
// is pinned by a test) and keeps analyzers honest about what they
// depend on — no hidden pointer graphs that an incremental run could
// not reconstruct.

// Fact is one recorded statement about a package's API. Object is a
// package-qualified-free name ("Server.now", "Measure", "fixQueue.size");
// an empty Object marks a package-level fact. Facts are namespaced by
// the analyzer that exported them: analyzers never read another
// analyzer's facts.
type Fact struct {
	Analyzer string `json:"analyzer"`
	Kind     string `json:"kind"`
	Object   string `json:"object,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// PackageFacts is every fact recorded for one package, in deterministic
// order — the unit of the store's JSON encoding.
type PackageFacts struct {
	Package string `json:"package"`
	Facts   []Fact `json:"facts"`
}

// FactStore accumulates facts across one whole-program run. Not safe
// for concurrent use; the driver is single-threaded.
type FactStore struct {
	byPkg map[string][]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byPkg: make(map[string][]Fact)}
}

// add records a fact for pkg, dropping exact duplicates.
func (s *FactStore) add(pkg string, f Fact) {
	for _, have := range s.byPkg[pkg] {
		if have == f {
			return
		}
	}
	s.byPkg[pkg] = append(s.byPkg[pkg], f)
}

// Lookup returns the detail of the (analyzer, kind, object) fact
// recorded for pkg, and whether it exists.
func (s *FactStore) Lookup(pkg, analyzer, kind, object string) (string, bool) {
	for _, f := range s.byPkg[pkg] {
		if f.Analyzer == analyzer && f.Kind == kind && f.Object == object {
			return f.Detail, true
		}
	}
	return "", false
}

// OfKind returns every (analyzer, kind) fact recorded for pkg.
func (s *FactStore) OfKind(pkg, analyzer, kind string) []Fact {
	var out []Fact
	for _, f := range s.byPkg[pkg] {
		if f.Analyzer == analyzer && f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// Export renders the whole store in deterministic order: packages
// sorted by import path, facts by (analyzer, kind, object, detail).
func (s *FactStore) Export() []PackageFacts {
	pkgs := make([]string, 0, len(s.byPkg))
	for p, fs := range s.byPkg {
		if len(fs) > 0 {
			pkgs = append(pkgs, p)
		}
	}
	sort.Strings(pkgs)
	out := make([]PackageFacts, 0, len(pkgs))
	for _, p := range pkgs {
		fs := append([]Fact(nil), s.byPkg[p]...)
		sort.Slice(fs, func(i, j int) bool {
			a, b := fs[i], fs[j]
			if a.Analyzer != b.Analyzer {
				return a.Analyzer < b.Analyzer
			}
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			if a.Object != b.Object {
				return a.Object < b.Object
			}
			return a.Detail < b.Detail
		})
		out = append(out, PackageFacts{Package: p, Facts: fs})
	}
	return out
}

// MarshalJSON encodes the store as the sorted PackageFacts list.
func (s *FactStore) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Export())
}

// UnmarshalJSON rebuilds a store from its Export encoding.
func (s *FactStore) UnmarshalJSON(data []byte) error {
	var pkgs []PackageFacts
	if err := json.Unmarshal(data, &pkgs); err != nil {
		return err
	}
	s.byPkg = make(map[string][]Fact)
	for _, pf := range pkgs {
		for _, f := range pf.Facts {
			s.add(pf.Package, f)
		}
	}
	return nil
}
