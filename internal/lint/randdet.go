package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RandDet enforces the determinism contract every simulation and fault
// plane in this repo is built on (seeded PCG streams threaded from the
// caller — faultnet, rfsim, anchor backoff, wifi noise): no package may
// draw from `math/rand`'s or `math/rand/v2`'s *global* source, and no
// random source may be seeded from the wall clock. A global or
// time-seeded draw makes ablations, fault drills and golden figures
// irreproducible — the exact drift ISSUE 7 exists to stop.
//
// Two patterns are flagged, everywhere in the module:
//
//  1. calls to package-level functions of math/rand or math/rand/v2
//     that use the process-global source (rand.Float64, rand.IntN,
//     rand.Perm, rand.Shuffle, ...). Constructors that only build
//     values (New, NewSource, NewPCG, NewChaCha8, NewZipf) are fine;
//  2. source constructors whose seed expression contains a time.Now
//     call — a deterministically *structured* but nondeterministically
//     *seeded* stream is still irreproducible.
var RandDet = &Analyzer{
	Name: "randdet",
	Doc:  "determinism: no global math/rand draws, no time-seeded random sources — thread a seeded *rand.Rand",
	Run:  runRandDet,
}

// randConstructors build sources or wrap them without drawing from the
// global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runRandDet(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicit *rand.Rand / Source: fine
			}
			if !randConstructors[fn.Name()] {
				p.Reportf(call.Pos(), "global %s.%s draws from the process-wide source; thread a seeded *rand.Rand instead",
					fn.Pkg().Path(), fn.Name())
				return true
			}
			// Constructor: audit the seed expression for wall-clock input.
			for _, arg := range call.Args {
				if pos, found := findTimeNow(p, arg); found {
					p.Reportf(pos, "%s.%s seeded from time.Now: runs are not reproducible; use a caller-provided seed",
						fn.Pkg().Path(), fn.Name())
					break
				}
			}
			return true
		})
	}
}

// findTimeNow reports the position of a time.Now call anywhere in e.
func findTimeNow(p *Pass, e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
