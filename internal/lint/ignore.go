package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ignorePrefix is the suppression directive marker. The full grammar is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the offending line (trailing comment) or on the line
// directly above it. "all" matches every analyzer.
const ignorePrefix = "//lint:ignore"

// ignoreIndex maps file → line → set of suppressed analyzer names. A
// directive on line L suppresses findings on lines L and L+1.
type ignoreIndex struct {
	byLine map[string]map[int]map[string]bool
}

// buildIgnoreIndex scans every comment for directives. Malformed
// directives (missing reason, unknown analyzer) are returned as findings
// under the pseudo-analyzer "lint" so they cannot silently suppress
// nothing.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (*ignoreIndex, []Finding) {
	ix := &ignoreIndex{byLine: make(map[string]map[int]map[string]bool)}
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Pos: fset.Position(pos), Analyzer: "lint", Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(c.Pos(), "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"")
					continue
				}
				names := strings.Split(fields[0], ",")
				valid := true
				for _, name := range names {
					if name != "all" && ByName(name) == nil {
						report(c.Pos(), "//lint:ignore names unknown analyzer "+strconv.Quote(name))
						valid = false
					}
				}
				if !valid {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ix.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ix.byLine[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, name := range names {
					set[name] = true
				}
			}
		}
	}
	return ix, bad
}

// suppressed reports whether f is covered by a directive on its line or
// the line above.
func (ix *ignoreIndex) suppressed(f Finding) bool {
	if f.Analyzer == "lint" {
		return false // directives cannot suppress directive errors
	}
	lines := ix.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if set := lines[line]; set != nil && (set[f.Analyzer] || set["all"]) {
			return true
		}
	}
	return false
}
