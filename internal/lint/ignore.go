package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// ignorePrefix is the suppression directive marker. The full grammar is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the offending line (trailing comment) or on the line
// directly above it. "all" matches every analyzer.
const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed, well-formed //lint:ignore comment. used
// flips when the directive suppresses at least one finding, which is
// what the -unused-ignores mode audits.
type ignoreDirective struct {
	pos   token.Position
	names map[string]bool
	used  bool
}

// ignoreIndex maps file → line → directive. A directive on line L
// suppresses findings on lines L and L+1.
type ignoreIndex struct {
	byLine map[string]map[int]*ignoreDirective
}

// buildIgnoreIndex scans every comment for directives. Malformed
// directives (missing reason, unknown analyzer) are returned as findings
// under the pseudo-analyzer "lint" so they cannot silently suppress
// nothing.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (*ignoreIndex, []Finding) {
	ix := &ignoreIndex{byLine: make(map[string]map[int]*ignoreDirective)}
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Pos: fset.Position(pos), Analyzer: "lint", Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					report(c.Pos(), "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"")
					continue
				}
				names := strings.Split(fields[0], ",")
				valid := true
				for _, name := range names {
					if name != "all" && ByName(name) == nil {
						report(c.Pos(), "//lint:ignore names unknown analyzer "+strconv.Quote(name))
						valid = false
					}
				}
				if !valid {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ix.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int]*ignoreDirective)
					ix.byLine[pos.Filename] = lines
				}
				d := lines[pos.Line]
				if d == nil {
					d = &ignoreDirective{pos: pos, names: make(map[string]bool)}
					lines[pos.Line] = d
				}
				for _, name := range names {
					d.names[name] = true
				}
			}
		}
	}
	return ix, bad
}

// suppressed reports whether f is covered by a directive on its line or
// the line above, marking the matching directive used.
func (ix *ignoreIndex) suppressed(f Finding) bool {
	if f.Analyzer == "lint" {
		return false // directives cannot suppress directive errors
	}
	lines := ix.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if d := lines[line]; d != nil && (d.names[f.Analyzer] || d.names["all"]) {
			d.used = true
			return true
		}
	}
	return false
}

// unused returns a "lint" finding for every directive that suppressed
// nothing. A directive is only eligible when every analyzer it names was
// among those run ("all" requires the full set), so subset runs cannot
// misreport directives for analyzers they skipped.
func (ix *ignoreIndex) unused(ran []*Analyzer) []Finding {
	ranNames := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranNames[a.Name] = true
	}
	ranAll := len(ranNames) >= len(All)
	var out []Finding
	for _, lines := range ix.byLine {
		for _, d := range lines {
			if d.used {
				continue
			}
			eligible := true
			var names []string
			for name := range d.names {
				names = append(names, name)
				if name == "all" {
					eligible = eligible && ranAll
				} else {
					eligible = eligible && ranNames[name]
				}
			}
			if !eligible {
				continue
			}
			sort.Strings(names)
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: "lint",
				Message:  "unused //lint:ignore " + strings.Join(names, ",") + " (suppresses nothing)",
			})
		}
	}
	return out
}
