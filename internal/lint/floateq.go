package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between float or complex operands in non-test
// code. The DSP pipeline (MUSIC eigendecompositions, Eq. 13's projector,
// phase unwrapping) produces values where bit-exact equality is
// meaningless; comparisons should use a tolerance. Comparisons against
// an exact-zero literal are still flagged — zero sentinels in float code
// deserve an explicit //lint:ignore with the reason they are exact.
// Test files never reach the analyzers (the loader only parses GoFiles).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on float or complex operands outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			if isFloatOrComplex(p, b.X) || isFloatOrComplex(p, b.Y) {
				p.Reportf(b.OpPos, "%s on %s operands %q and %q; compare with a tolerance",
					b.Op, operandKind(p, b), p.ExprString(b.X), p.ExprString(b.Y))
			}
			return true
		})
	}
}

func isFloatOrComplex(p *Pass, e ast.Expr) bool {
	typ := p.Info.TypeOf(e)
	if typ == nil {
		return false
	}
	basic, ok := typ.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

func operandKind(p *Pass, b *ast.BinaryExpr) string {
	for _, e := range [2]ast.Expr{b.X, b.Y} {
		if typ := p.Info.TypeOf(e); typ != nil {
			if basic, ok := typ.Underlying().(*types.Basic); ok && basic.Info()&types.IsComplex != 0 {
				return "complex"
			}
		}
	}
	return "float"
}
