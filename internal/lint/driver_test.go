package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the driver to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badSource = `package main

const freqMHz = 2402.0
const hopHz = 2e6

var oops = freqMHz * hopHz

func main() {}
`

// TestDriverExitCodes drives Main end to end against a temp module:
// findings exit 1 with file:line:col output, a //lint:ignore flips the
// same module to exit 0, and load failures exit 2.
func TestDriverExitCodes(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": badSource,
	})

	var out, errOut bytes.Buffer
	if code := Main(&out, &errOut, dir, []string{"./..."}); code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errOut.String())
	}
	if !strings.Contains(out.String(), "main.go:6:20: [unitcheck]") {
		t.Fatalf("output missing file:line:col finding:\n%s", out.String())
	}

	// The same violation under a //lint:ignore exits clean.
	suppressed := strings.Replace(badSource,
		"var oops =",
		"//lint:ignore unitcheck deliberate fixture for the driver test\nvar oops =", 1)
	dir2 := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": suppressed,
	})
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir2, []string{"./..."}); code != ExitClean {
		t.Fatalf("suppressed module: exit = %d, want %d\nstdout: %s\nstderr: %s",
			code, ExitClean, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("suppressed module still printed findings:\n%s", out.String())
	}

	// A pattern that matches nothing loadable is a load error.
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir, []string{"./doesnotexist"}); code != ExitError {
		t.Fatalf("bad pattern: exit = %d, want %d", code, ExitError)
	}
}

// TestDriverAnalyzerSelection checks -analyzers subsetting and the
// unknown-analyzer error path.
func TestDriverAnalyzerSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": badSource,
	})
	var out, errOut bytes.Buffer
	// floateq alone has nothing to say about the unit bug.
	if code := Main(&out, &errOut, dir, []string{"-analyzers", "floateq", "./..."}); code != ExitClean {
		t.Fatalf("floateq-only exit = %d, want %d\n%s", code, ExitClean, out.String())
	}
	if code := Main(&out, &errOut, dir, []string{"-analyzers", "bogus", "./..."}); code != ExitError {
		t.Fatalf("unknown analyzer exit = %d, want %d", code, ExitError)
	}
}
