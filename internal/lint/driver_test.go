package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the driver to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const badSource = `package main

const freqMHz = 2402.0
const hopHz = 2e6

var oops = freqMHz * hopHz

func main() {}
`

// TestDriverExitCodes drives Main end to end against a temp module:
// findings exit 1 with file:line:col output, a //lint:ignore flips the
// same module to exit 0, and load failures exit 2.
func TestDriverExitCodes(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": badSource,
	})

	var out, errOut bytes.Buffer
	if code := Main(&out, &errOut, dir, []string{"./..."}); code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errOut.String())
	}
	if !strings.Contains(out.String(), "main.go:6:20: [unitcheck]") {
		t.Fatalf("output missing file:line:col finding:\n%s", out.String())
	}

	// The same violation under a //lint:ignore exits clean.
	suppressed := strings.Replace(badSource,
		"var oops =",
		"//lint:ignore unitcheck deliberate fixture for the driver test\nvar oops =", 1)
	dir2 := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": suppressed,
	})
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir2, []string{"./..."}); code != ExitClean {
		t.Fatalf("suppressed module: exit = %d, want %d\nstdout: %s\nstderr: %s",
			code, ExitClean, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("suppressed module still printed findings:\n%s", out.String())
	}

	// A pattern that matches nothing loadable is a load error.
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir, []string{"./doesnotexist"}); code != ExitError {
		t.Fatalf("bad pattern: exit = %d, want %d", code, ExitError)
	}
}

// TestDriverJSONOutput pins the -json envelope: tool name, schema
// version, and structured findings with file/line/analyzer fields.
func TestDriverJSONOutput(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": badSource,
	})
	var out, errOut bytes.Buffer
	if code := Main(&out, &errOut, dir, []string{"-json", "./..."}); code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errOut.String())
	}
	var report struct {
		Tool     string `json:"tool"`
		Version  int    `json:"version"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Tool != "bloc-lint" || report.Version != 2 {
		t.Fatalf("envelope = %s v%d, want bloc-lint v2", report.Tool, report.Version)
	}
	if len(report.Findings) == 0 || report.Findings[0].Analyzer != "unitcheck" || report.Findings[0].Line != 6 {
		t.Fatalf("unexpected findings: %+v", report.Findings)
	}
}

// TestDriverBaseline adopts the unit bug into a baseline, checks the
// next run exits clean, then checks a new finding still escapes it.
func TestDriverBaseline(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": badSource,
	})
	baseline := filepath.Join(t.TempDir(), "baseline.json")

	var out, errOut bytes.Buffer
	if code := Main(&out, &errOut, dir, []string{"-write-baseline", baseline, "./..."}); code != ExitClean {
		t.Fatalf("-write-baseline exit = %d, want %d (stderr: %s)", code, ExitClean, errOut.String())
	}
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	// Same tree under the baseline: clean.
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir, []string{"-baseline", baseline, "./..."}); code != ExitClean {
		t.Fatalf("baselined run exit = %d, want %d\nstdout: %s", code, ExitClean, out.String())
	}
	if !strings.Contains(errOut.String(), "baselined finding(s) suppressed") {
		t.Fatalf("missing suppression note on stderr: %s", errOut.String())
	}

	// A fresh violation is not shadowed by the baseline.
	grown := badSource + "\nconst chanGHz = 2.4\n\nvar oops2 = chanGHz * hopHz\n"
	dir2 := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": grown,
	})
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir2, []string{"-baseline", baseline, "./..."}); code != ExitFindings {
		t.Fatalf("new finding swallowed by baseline: exit = %d\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "chanGHz") {
		t.Fatalf("surviving finding should be the new chanGHz one:\n%s", out.String())
	}
}

// TestDriverUnusedIgnores checks that -unused-ignores flags a directive
// suppressing nothing, and stays quiet about one that earns its keep.
func TestDriverUnusedIgnores(t *testing.T) {
	dead := `package main

const aMHz = 1.0

//lint:ignore unitcheck this suppresses nothing at all
var fine = aMHz + aMHz

func main() {}
`
	dir := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": dead,
	})
	var out, errOut bytes.Buffer
	// Without the flag the dead directive is invisible.
	if code := Main(&out, &errOut, dir, []string{"./..."}); code != ExitClean {
		t.Fatalf("default run exit = %d, want %d\n%s", code, ExitClean, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir, []string{"-unused-ignores", "./..."}); code != ExitFindings {
		t.Fatalf("-unused-ignores exit = %d, want %d\n%s", code, ExitFindings, out.String())
	}
	if !strings.Contains(out.String(), "unused //lint:ignore") {
		t.Fatalf("missing unused-directive finding:\n%s", out.String())
	}

	// A directive that actually suppresses something is not reported.
	live := strings.Replace(badSource,
		"var oops =",
		"//lint:ignore unitcheck deliberate fixture\nvar oops =", 1)
	dir2 := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": live,
	})
	out.Reset()
	errOut.Reset()
	if code := Main(&out, &errOut, dir2, []string{"-unused-ignores", "./..."}); code != ExitClean {
		t.Fatalf("live directive misreported: exit = %d\nstdout: %s", code, out.String())
	}
}

// TestDriverAnalyzerSelection checks -analyzers subsetting and the
// unknown-analyzer error path.
func TestDriverAnalyzerSelection(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module lintfixture\n\ngo 1.22\n",
		"main.go": badSource,
	})
	var out, errOut bytes.Buffer
	// floateq alone has nothing to say about the unit bug.
	if code := Main(&out, &errOut, dir, []string{"-analyzers", "floateq", "./..."}); code != ExitClean {
		t.Fatalf("floateq-only exit = %d, want %d\n%s", code, ExitClean, out.String())
	}
	if code := Main(&out, &errOut, dir, []string{"-analyzers", "bogus", "./..."}); code != ExitError {
		t.Fatalf("unknown analyzer exit = %d, want %d", code, ExitError)
	}
}
