package lint

import (
	"go/ast"
	"go/types"
)

// ClockCheck machine-checks the injectable-clock contract of the serving
// plane (DESIGN.md §12/§13): a package that defines a clock seam — a
// struct field or package variable of type `func() time.Time`, like
// locserver's `Server.now` — must route every time observation through
// it, and so must every package that imports a seam-bearing package
// (eval drives the server; tests substitute a fake clock; a stray
// `time.Now` makes runs irreproducible and untestable).
//
// Phase one exports a "seam" package fact for every clock seam found.
// Phase two flags direct calls to time.Now/Since/Until/After/Sleep/
// NewTimer/NewTicker/AfterFunc/Tick in any package that defines a seam
// or directly imports one that does. Taking `time.Now` as a *value* (to
// install as the seam's default) is allowed — only calls go around the
// seam. Wall-clock use that is the point (benchmark measurement,
// checkpoint cadence tickers) carries a //lint:ignore with the reason.
var ClockCheck = &Analyzer{
	Name:  "clockcheck",
	Doc:   "packages with an injected clock seam (func() time.Time) must not call time.Now/Since/After/Sleep/... directly",
	Facts: factsClockCheck,
	Run:   runClockCheck,
}

// clockedFuncs are the time package functions that observe or schedule
// against the wall clock.
var clockedFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Sleep": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Tick": true,
}

// isClockSeamType reports whether t is `func() time.Time`.
func isClockSeamType(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 || sig.Variadic() {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// factsClockCheck exports a "seam" fact for every struct field or
// package-level variable of type func() time.Time.
func factsClockCheck(p *Pass) {
	if p.Info == nil {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					for _, name := range field.Names {
						if v, ok := p.Info.Defs[name].(*types.Var); ok && isClockSeamType(v.Type()) {
							p.ExportFact("seam", seamObjectName(p, name, v), "struct field")
						}
					}
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok && !v.IsField() &&
						v.Parent() == p.Pkg.Scope() && isClockSeamType(v.Type()) {
						p.ExportFact("seam", name.Name, "package variable")
					}
				}
			}
			return true
		})
	}
}

// seamObjectName qualifies a seam field with its struct type when the
// type checker knows it ("Server.now"); bare field name otherwise.
func seamObjectName(p *Pass, name *ast.Ident, v *types.Var) string {
	// Walk the package scope for a named struct type containing v.
	scope := p.Pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return obj.Name() + "." + name.Name
			}
		}
	}
	return name.Name
}

// clockSeamScope returns the seam that puts the package in scope: its
// own seam fact, or the first one among its direct imports. The second
// return is the package that owns the seam ("" when out of scope).
func clockSeamScope(p *Pass) (seam, owner string) {
	if p.Pkg == nil {
		return "", ""
	}
	if fs := p.FactsOfKind(p.Pkg.Path(), "seam"); len(fs) > 0 {
		return fs[0].Object, p.Pkg.Path()
	}
	for _, imp := range p.Pkg.Imports() {
		if fs := p.FactsOfKind(imp.Path(), "seam"); len(fs) > 0 {
			return fs[0].Object, imp.Path()
		}
	}
	return "", ""
}

func runClockCheck(p *Pass) {
	if p.Info == nil {
		return
	}
	seam, owner := clockSeamScope(p)
	if owner == "" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !clockedFuncs[sel.Sel.Name] {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			p.Reportf(call.Pos(), "direct time.%s call in a clocked package (route through the %s clock seam of %s)",
				sel.Sel.Name, seam, owner)
			return true
		})
	}
}
