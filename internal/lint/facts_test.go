package lint

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestFactStoreRoundTrip pins the JSON contract of the fact store: the
// Export encoding survives Marshal → Unmarshal bit-exact, duplicates
// collapse, and the lookup helpers see what was recorded.
func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.add("bloc/internal/locserver", Fact{Analyzer: "clockcheck", Kind: "seam", Object: "Server.now", Detail: "func() time.Time"})
	s.add("bloc/internal/locserver", Fact{Analyzer: "sendblock", Kind: "may-block", Object: "Server.Wait", Detail: "WaitGroup.Wait"})
	s.add("bloc/internal/locserver", Fact{Analyzer: "sendblock", Kind: "may-block", Object: "Server.Wait", Detail: "WaitGroup.Wait"}) // dup
	s.add("bloc/internal/wifi", Fact{Analyzer: "atomiccheck", Kind: "atomic-field", Object: "spectrum.hits"})

	if got := len(s.byPkg["bloc/internal/locserver"]); got != 2 {
		t.Fatalf("duplicate fact not collapsed: %d facts, want 2", got)
	}
	if detail, ok := s.Lookup("bloc/internal/locserver", "clockcheck", "seam", "Server.now"); !ok || detail != "func() time.Time" {
		t.Fatalf("Lookup = %q, %v", detail, ok)
	}
	if _, ok := s.Lookup("bloc/internal/wifi", "clockcheck", "seam", "Server.now"); ok {
		t.Fatal("Lookup found a fact in the wrong package")
	}
	if got := s.OfKind("bloc/internal/locserver", "sendblock", "may-block"); len(got) != 1 || got[0].Object != "Server.Wait" {
		t.Fatalf("OfKind = %+v", got)
	}

	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewFactStore()
	if err := json.Unmarshal(buf, restored); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Export(), restored.Export()) {
		t.Fatalf("round-trip diverged:\nbefore: %+v\nafter:  %+v", s.Export(), restored.Export())
	}
}

// crossPackageModule is a two-package module: queue.Push blocks on a
// channel send, and the root package's ingest-path function — marked
// nonblocking — calls it. Only the fact hop from queue to the root
// package can catch that.
var crossPackageModule = map[string]string{
	"go.mod": "module factfixture\n\ngo 1.22\n",
	"queue/queue.go": `package queue

var ch = make(chan int, 1)

// Push delivers v to the single consumer.
func Push(v int) {
	ch <- v
}
`,
	"main.go": `package main

import "factfixture/queue"

// handle is the packet hot path. nonblocking: must never park.
func handle(v int) {
	queue.Push(v)
}

func main() { handle(1) }
`,
}

// TestCrossPackageFacts drives the whole two-phase pipeline through the
// driver: sendblock exports a may-block fact for queue.Push in phase
// one and flags the nonblocking caller in another package in phase two.
func TestCrossPackageFacts(t *testing.T) {
	dir := writeModule(t, crossPackageModule)
	var out, errOut bytes.Buffer
	code := Main(&out, &errOut, dir, []string{"-analyzers", "sendblock", "-facts", "-", "./..."})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitFindings, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "handle calls queue.Push, which may block (channel send)") {
		t.Fatalf("missing cross-package may-block finding:\n%s", out.String())
	}
	// The -facts dump records the exported fact that carried the hop.
	if !strings.Contains(out.String(), `"may-block"`) || !strings.Contains(out.String(), `"Push"`) {
		t.Fatalf("-facts dump missing the may-block fact for Push:\n%s", out.String())
	}
}
