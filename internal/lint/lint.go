// Package lint is BLoc's self-contained static-analysis framework: a
// handful of domain-aware analyzers that machine-check invariants the Go
// compiler cannot see — frequency-unit bookkeeping (Eq. 10/14 operate on
// Hz), radian discipline in steering-vector math (Eq. 17), the
// "// guarded by <mutex>" concurrency contracts of the acquisition plane,
// float equality, and goroutine completion signals.
//
// The framework uses only the standard library (go/parser, go/ast,
// go/types, go/importer); packages are enumerated with `go list -json`
// and type-checked from source, so the module keeps its zero-dependency
// property. The cmd/bloc-lint driver runs every analyzer and exits
// non-zero on findings.
//
// Findings can be suppressed with a directive on the offending line or
// the line above it:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a directive without one (or naming an unknown
// analyzer) is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as file:line:col: [analyzer] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in output and //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects the package behind pass and reports findings.
	Run func(*Pass)
}

// All lists every analyzer the driver runs, in output order.
var All = []*Analyzer{UnitCheck, AngleCheck, GuardCheck, FloatEq, GoLeak}

// ByName resolves an analyzer by its Name.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExprString renders an expression compactly for diagnostics.
func (p *Pass) ExprString(e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, p.Fset, e); err != nil {
		return "?"
	}
	return sb.String()
}

// RunPackage runs the given analyzers over one loaded package and returns
// the surviving (non-suppressed) findings sorted by position. Malformed
// //lint:ignore directives are reported under the pseudo-analyzer "lint".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	ix, bad := buildIgnoreIndex(pkg.Fset, pkg.Files)
	findings = append(findings, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			findings: &findings,
		}
		a.Run(pass)
	}
	kept := findings[:0]
	for _, f := range findings {
		if !ix.suppressed(f) {
			kept = append(kept, f)
		}
	}
	sortFindings(kept)
	return kept
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
