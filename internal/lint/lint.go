// Package lint is BLoc's self-contained static-analysis framework: a
// handful of domain-aware analyzers that machine-check invariants the Go
// compiler cannot see — frequency-unit bookkeeping (Eq. 10/14 operate on
// Hz), radian discipline in steering-vector math (Eq. 17), the
// "// guarded by <mutex>" concurrency contracts of the acquisition plane,
// float equality, and goroutine completion signals.
//
// The framework uses only the standard library (go/parser, go/ast,
// go/types, go/importer); packages are enumerated with `go list -json`
// and type-checked from source, so the module keeps its zero-dependency
// property. The cmd/bloc-lint driver runs every analyzer and exits
// non-zero on findings.
//
// Findings can be suppressed with a directive on the offending line or
// the line above it:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a directive without one (or naming an unknown
// analyzer) is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding as file:line:col: [analyzer] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in output and //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Facts, when set, is the phase-one hook: it runs over every loaded
	// package (dependencies first) and records package facts via
	// Pass.ExportFact before any Run hook fires. Facts hooks must not
	// report findings.
	Facts func(*Pass)
	// Run inspects the package behind pass and reports findings. It may
	// consume facts recorded in phase one via Pass.Fact/FactsOfKind.
	Run func(*Pass)
}

// All lists every analyzer the driver runs, in output order.
var All = []*Analyzer{
	UnitCheck, AngleCheck, GuardCheck, FloatEq, GoLeak,
	ClockCheck, RandDet, AtomicCheck, SendBlock, CondCheck,
}

// ByName resolves an analyzer by its Name.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	findings *[]Finding
	facts    *FactStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact records a (kind, object, detail) fact about the current
// package under the current analyzer's namespace. Object names are
// package-local ("Server.now", "Measure"); an empty object marks a
// package-level fact.
func (p *Pass) ExportFact(kind, object, detail string) {
	if p.facts == nil || p.Pkg == nil {
		return
	}
	p.facts.add(p.Pkg.Path(), Fact{Analyzer: p.analyzer.Name, Kind: kind, Object: object, Detail: detail})
}

// Fact looks up the current analyzer's (kind, object) fact recorded for
// the package at pkgPath — typically an import of the package under
// analysis, whose facts phase already ran.
func (p *Pass) Fact(pkgPath, kind, object string) (string, bool) {
	if p.facts == nil {
		return "", false
	}
	return p.facts.Lookup(pkgPath, p.analyzer.Name, kind, object)
}

// FactsOfKind returns every fact of the given kind the current analyzer
// recorded for the package at pkgPath.
func (p *Pass) FactsOfKind(pkgPath, kind string) []Fact {
	if p.facts == nil {
		return nil
	}
	return p.facts.OfKind(pkgPath, p.analyzer.Name, kind)
}

// ExprString renders an expression compactly for diagnostics.
func (p *Pass) ExprString(e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, p.Fset, e); err != nil {
		return "?"
	}
	return sb.String()
}

// RunOptions tunes a whole-program run.
type RunOptions struct {
	// UnusedIgnores additionally reports //lint:ignore directives that
	// suppressed nothing, under the pseudo-analyzer "lint". A directive
	// is only eligible when every analyzer it names actually ran.
	UnusedIgnores bool
}

// RunPackages is the two-phase whole-program entry point: phase one runs
// every analyzer's Facts hook over every package (in the loader's
// dependency order, so downstream packages see upstream facts), phase
// two runs every Run hook and filters findings through the
// //lint:ignore index. It returns the surviving findings sorted by
// position and the populated fact store.
func RunPackages(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Finding, *FactStore) {
	store := NewFactStore()
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Facts == nil {
				continue
			}
			a.Facts(&Pass{
				Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info,
				analyzer: a, findings: new([]Finding), facts: store,
			})
		}
	}
	var all []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		ix, bad := buildIgnoreIndex(pkg.Fset, pkg.Files)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			a.Run(&Pass{
				Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info,
				analyzer: a, findings: &findings, facts: store,
			})
		}
		kept := findings[:0]
		for _, f := range findings {
			if !ix.suppressed(f) {
				kept = append(kept, f)
			}
		}
		if opts.UnusedIgnores {
			kept = append(kept, ix.unused(analyzers)...)
		}
		all = append(all, kept...)
	}
	sortFindings(all)
	return all, store
}

// RunPackage runs the given analyzers over one loaded package (both
// phases, package-local facts only) and returns the surviving findings
// sorted by position. Malformed //lint:ignore directives are reported
// under the pseudo-analyzer "lint".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunPackages([]*Package{pkg}, analyzers, RunOptions{})
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
