package testbed

import (
	"math/cmplx"
	"testing"

	"bloc/internal/ble"
	"bloc/internal/geom"
)

func TestWiFiChannelMapping(t *testing.T) {
	// Wi-Fi channel 6 is centered at 2437 MHz and spans 2427–2447 MHz:
	// it overlaps BLE data channels 12–22 (2428–2448 MHz, edge overlap
	// included) and not channel 0 (2404) or 36 (2478).
	w, err := WiFiChannel(6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if w.CenterHz != 2437e6 {
		t.Errorf("center = %v", w.CenterHz)
	}
	if !w.Overlaps(ble.ChannelIndex(15)) {
		t.Error("channel 15 (2436 MHz) should overlap Wi-Fi 6")
	}
	if w.Overlaps(ble.ChannelIndex(0)) || w.Overlaps(ble.ChannelIndex(36)) {
		t.Error("band-edge channels should not overlap Wi-Fi 6")
	}
	if _, err := WiFiChannel(0, 0.1); err == nil {
		t.Error("Wi-Fi channel 0 should be rejected")
	}
	if _, err := WiFiChannel(14, 0.1); err == nil {
		t.Error("Wi-Fi channel 14 should be rejected")
	}
}

func TestInterferenceCorruptsOverlappingBandsOnly(t *testing.T) {
	mk := func(withWiFi bool) ([]complex128, *Deployment) {
		d, err := Paper(81)
		if err != nil {
			t.Fatal(err)
		}
		if withWiFi {
			w, _ := WiFiChannel(6, 0.2)
			d.Interferers = []Interferer{w}
		}
		snap := d.Sounding(geom.Pt(0.5, 0.5))
		out := make([]complex128, len(snap.Bands))
		for b := range snap.Bands {
			out[b] = snap.Tag[b][1][0]
		}
		return out, d
	}
	clean, d := mk(false)
	dirty, _ := mk(true)
	w := d.Interferers // empty; reuse overlap test from a fresh interferer
	_ = w
	wifi, _ := WiFiChannel(6, 0.2)
	for b, ch := range d.Bands {
		diff := cmplx.Abs(clean[b] - dirty[b])
		if wifi.Overlaps(ch) {
			if diff == 0 {
				t.Errorf("band %v overlaps Wi-Fi but was untouched", ch)
			}
		} else if diff != 0 {
			t.Errorf("band %v does not overlap Wi-Fi but changed by %v", ch, diff)
		}
	}
}

func TestDetectInterferenceBlacklistsCorrectBands(t *testing.T) {
	d, err := Paper(82)
	if err != nil {
		t.Fatal(err)
	}
	wifi, _ := WiFiChannel(6, 0.15)
	d.Interferers = []Interferer{wifi}
	used := d.DetectInterference(8, 3)
	usedSet := map[ble.ChannelIndex]bool{}
	for _, ch := range used {
		usedSet[ch] = true
	}
	var missedClean, keptDirty int
	for _, ch := range d.Bands {
		if wifi.Overlaps(ch) {
			if usedSet[ch] {
				keptDirty++
			}
		} else if !usedSet[ch] {
			missedClean++
		}
	}
	t.Logf("%d channels kept; %d dirty kept, %d clean dropped", len(used), keptDirty, missedClean)
	if keptDirty > 1 {
		t.Errorf("%d interfered channels survived detection", keptDirty)
	}
	if missedClean > 2 {
		t.Errorf("%d clean channels were wrongly blacklisted", missedClean)
	}
}

func TestDetectInterferenceNoInterferers(t *testing.T) {
	d, err := Paper(83)
	if err != nil {
		t.Fatal(err)
	}
	used := d.DetectInterference(6, 3)
	if len(used) < ble.NumDataChannels-2 {
		t.Errorf("quiet band kept only %d channels", len(used))
	}
}

func TestDetectInterferenceAlwaysKeepsTwo(t *testing.T) {
	d, err := Paper(84)
	if err != nil {
		t.Fatal(err)
	}
	// Jam the entire band.
	d.Interferers = []Interferer{{CenterHz: 2.441e9, SpanHz: 100e6, Sigma: 0.5}}
	used := d.DetectInterference(6, 3)
	if len(used) < 2 {
		t.Fatalf("only %d channels kept; spec requires ≥ 2", len(used))
	}
}
