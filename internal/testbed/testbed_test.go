package testbed

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"bloc/internal/ble"
	"bloc/internal/geom"
)

func TestNewValidation(t *testing.T) {
	env := CleanEnvironment(1)
	if _, err := New(env, Config{Anchors: 1, Antennas: 4}); err == nil {
		t.Error("1 anchor should be rejected")
	}
	if _, err := New(env, Config{Anchors: 4, Antennas: 1}); err == nil {
		t.Error("1 antenna should be rejected")
	}
	if _, err := New(env, Config{Anchors: 9, Antennas: 4}); err == nil {
		t.Error("9 anchors should be rejected")
	}
	d, err := New(env, Config{Anchors: 8, Antennas: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Anchors) != 8 {
		t.Errorf("anchors = %d", len(d.Anchors))
	}
}

func TestAnchorsPlacedOnWallsFacingInward(t *testing.T) {
	d, err := Paper(3)
	if err != nil {
		t.Fatal(err)
	}
	room := d.Env.Room
	for i, a := range d.Anchors {
		c := a.Center()
		if !room.Contains(c) {
			t.Errorf("anchor %d center %v outside room", i, c)
		}
		// Broadside must point toward the room center.
		toCenter := room.Center().Sub(c).Unit()
		if a.Broadside().Dot(toCenter) < 0.9 {
			t.Errorf("anchor %d broadside %v not facing room center", i, a.Broadside())
		}
		// All antennas inside the room.
		for j := 0; j < a.N; j++ {
			if !room.Contains(a.Antenna(j)) {
				t.Errorf("anchor %d antenna %d outside room", i, j)
			}
		}
	}
	// λ/2 default spacing.
	if math.Abs(d.Anchors[0].Spacing-HalfWavelength) > 1e-12 {
		t.Errorf("spacing = %v, want %v", d.Anchors[0].Spacing, HalfWavelength)
	}
}

func TestSoundingShape(t *testing.T) {
	d, err := Paper(5)
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Sounding(geom.Pt(0.5, -1))
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.NumBands() != ble.NumDataChannels || snap.NumAnchors() != 4 || snap.NumAntennas() != 4 {
		t.Fatalf("shape = (%d, %d, %d)", snap.NumBands(), snap.NumAnchors(), snap.NumAntennas())
	}
	// Channels must be non-trivial.
	if cmplx.Abs(snap.Tag[0][0][0]) == 0 {
		t.Error("zero channel measured")
	}
}

func TestSoundingGarbledByLOOffsets(t *testing.T) {
	// The measured phase must NOT equal the true channel phase (offsets
	// garble it, §5.1) — but the magnitude must match (offsets are pure
	// rotations) when noise is disabled.
	env := CleanEnvironment(7)
	d, err := New(env, Config{Anchors: 4, Antennas: 4, Seed: 7}) // SNRdB=0 → noiseless
	if err != nil {
		t.Fatal(err)
	}
	tag := geom.Pt(1, 0.5)
	meas := d.Sounding(tag)
	truth := d.TrueChannels(tag)
	var phaseDiffs []float64
	for b := range meas.Bands {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				m, h := meas.Tag[b][i][j], truth.Tag[b][i][j]
				if math.Abs(cmplx.Abs(m)-cmplx.Abs(h)) > 1e-9 {
					t.Fatalf("band %d anchor %d ant %d: magnitude garbled", b, i, j)
				}
				phaseDiffs = append(phaseDiffs, cmplx.Phase(m*cmplx.Conj(h)))
			}
		}
	}
	// The offsets must actually vary across bands (retune per hop).
	varies := false
	for _, p := range phaseDiffs[1:] {
		if math.Abs(p-phaseDiffs[0]) > 0.1 {
			varies = true
			break
		}
	}
	if !varies {
		t.Error("LO offsets do not vary across bands — retune model broken")
	}
}

func TestSoundingOffsetsSharedWithinAnchor(t *testing.T) {
	// Footnote 3: all antennas of one anchor share the oscillator, so the
	// per-band offset is identical across j. Verify: meas/true phase diff
	// is constant over antennas of an anchor, per band.
	env := CleanEnvironment(11)
	d, err := New(env, Config{Anchors: 3, Antennas: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tag := geom.Pt(-0.5, 1.5)
	meas := d.Sounding(tag)
	truth := d.TrueChannels(tag)
	for b := 0; b < meas.NumBands(); b += 7 {
		for i := 0; i < 3; i++ {
			ref := cmplx.Phase(meas.Tag[b][i][0] * cmplx.Conj(truth.Tag[b][i][0]))
			for j := 1; j < 4; j++ {
				p := cmplx.Phase(meas.Tag[b][i][j] * cmplx.Conj(truth.Tag[b][i][j]))
				d := math.Abs(geom.WrapAngle(p - ref))
				if d > 1e-6 {
					t.Fatalf("band %d anchor %d antenna %d: offset differs by %v", b, i, j, d)
				}
			}
		}
	}
}

func TestSoundingDeterministic(t *testing.T) {
	mk := func() complex128 {
		d, err := Paper(21)
		if err != nil {
			t.Fatal(err)
		}
		s := d.Sounding(geom.Pt(0.3, 0.4))
		return s.Tag[5][2][1] * s.Master[9][3]
	}
	if mk() != mk() {
		t.Error("Sounding is not deterministic for a fixed seed")
	}
}

func TestWaveformAgreesWithChannelDomain(t *testing.T) {
	// The two fidelities must agree when noise is off: the waveform DSP
	// measures the same garbled channels the channel-domain model writes
	// down directly — except for LO draws, so compare corrected products
	// instead: α = ĥ_ij·Ĥ*_i0·ĥ*_00 is offset-free (Eq. 10) and must match
	// between fidelities up to measurement precision.
	env := PaperEnvironment(2)
	d, err := New(env, Config{Anchors: 3, Antennas: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Bands = ble.DataChannels()[:4] // keep the waveform run cheap
	tag := geom.Pt(0.8, -0.6)

	cd := d.Sounding(tag)
	wf, err := d.SoundingWaveform(tag)
	if err != nil {
		t.Fatal(err)
	}
	alpha := func(tagC [][][]complex128, master [][]complex128, b, i, j int) complex128 {
		return tagC[b][i][j] * cmplx.Conj(master[b][i]) * cmplx.Conj(tagC[b][0][0])
	}
	for b := range d.Bands {
		for i := 1; i < 3; i++ {
			for j := 0; j < 2; j++ {
				a1 := alpha(cd.Tag, cd.Master, b, i, j)
				a2 := alpha(wf.Tag, wf.Master, b, i, j)
				if cmplx.Abs(a1-a2) > 0.02*cmplx.Abs(a1) {
					t.Fatalf("band %d anchor %d ant %d: corrected channels differ: %v vs %v",
						b, i, j, a1, a2)
				}
			}
		}
	}
}

func TestTrueChannelPhaseEncodesGeometry(t *testing.T) {
	// In a clean room the dominant (direct) path phase of the true channel
	// should advance with distance: two tags at different ranges from the
	// same anchor have different phase slopes across bands.
	env := CleanEnvironment(1)
	env.WallReflectivity = 0 // pure free-space
	d, err := New(env, Config{Anchors: 2, Antennas: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := d.TrueChannels(geom.Pt(0, 0))
	// Free-space channel: |h| = 1/d exactly.
	d00 := d.Anchors[0].Antenna(0).Dist(geom.Pt(0, 0))
	if math.Abs(cmplx.Abs(snap.Tag[0][0][0])-1/d00) > 1e-9 {
		t.Errorf("free-space magnitude %v, want %v", cmplx.Abs(snap.Tag[0][0][0]), 1/d00)
	}
}

func TestPaperEnvironmentIsMultipathRich(t *testing.T) {
	env := PaperEnvironment(9)
	paths := env.Paths(geom.Pt(-1, -1), geom.Pt(1.5, 2))
	if len(paths) < 15 {
		t.Errorf("paper room has only %d paths; expected a multipath-rich room", len(paths))
	}
	clean := CleanEnvironment(9)
	cleanPaths := clean.Paths(geom.Pt(-1, -1), geom.Pt(1.5, 2))
	if len(cleanPaths) >= len(paths) {
		t.Error("clean room should have fewer paths than the paper room")
	}
}

func BenchmarkSounding(b *testing.B) {
	d, err := Paper(1)
	if err != nil {
		b.Fatal(err)
	}
	tag := geom.Pt(0.7, -1.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sounding(tag)
	}
}

func TestWaveformWithTimingJitterStillAgrees(t *testing.T) {
	// With unknown packet arrival times, the anchors must recover
	// alignment by preamble correlation; the corrected channels must
	// still match the channel-domain model.
	env := PaperEnvironment(19)
	d, err := New(env, Config{Anchors: 3, Antennas: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	d.Bands = ble.DataChannels()[:3]
	d.TimingJitter = 200
	d.SampleNoiseSigma = 1e-5
	tag := geom.Pt(0.6, -0.8)

	cd := d.Sounding(tag)
	wf, err := d.SoundingWaveform(tag)
	if err != nil {
		t.Fatal(err)
	}
	alpha := func(tagC [][][]complex128, master [][]complex128, b, i, j int) complex128 {
		return tagC[b][i][j] * cmplx.Conj(master[b][i]) * cmplx.Conj(tagC[b][0][0])
	}
	for b := range d.Bands {
		for i := 1; i < 3; i++ {
			for j := 0; j < 2; j++ {
				a1 := alpha(cd.Tag, cd.Master, b, i, j)
				a2 := alpha(wf.Tag, wf.Master, b, i, j)
				if cmplx.Abs(a1-a2) > 0.05*cmplx.Abs(a1) {
					t.Fatalf("band %d anchor %d ant %d: jittered waveform diverged: %v vs %v",
						b, i, j, a1, a2)
				}
			}
		}
	}
}

func TestSoundingWithConnectionMatchesStaticOrder(t *testing.T) {
	// An acquisition driven by the live connection hop sequence must
	// localize identically to the static band list: the engine only sees
	// (frequency, channel) pairs, never the order.
	d, err := Paper(91)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(91, 91))
	ind, err := ble.DefaultConnectInd(ble.DeviceAddress{1}, ble.DeviceAddress{2}, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ble.Establish(ind)
	if err != nil {
		t.Fatal(err)
	}
	tag := geom.Pt(0.7, -0.3)
	snap, err := d.SoundingWithConnection(conn, tag)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumBands() != ble.NumDataChannels {
		t.Fatalf("connection cycle measured %d bands", snap.NumBands())
	}
	// All 37 channels present exactly once.
	seen := map[ble.ChannelIndex]bool{}
	for _, ch := range snap.Bands {
		if seen[ch] {
			t.Fatalf("channel %d measured twice", ch)
		}
		seen[ch] = true
	}
	// Frequencies track the (permuted) channels.
	for b, ch := range snap.Bands {
		if snap.Freqs[b] != ch.CenterFreq() {
			t.Fatalf("band %d frequency mismatch", b)
		}
	}
	// The connection advanced a full cycle plus one parking event.
	if conn.Event() != uint16(ble.NumDataChannels) {
		t.Errorf("connection event = %d", conn.Event())
	}
}

func TestSoundingWithConnectionRespectsChannelMap(t *testing.T) {
	d, err := Paper(92)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(92, 92))
	ind, err := ble.DefaultConnectInd(ble.DeviceAddress{1}, ble.DeviceAddress{2}, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Blacklist channels 10..19 in the CONNECT_IND channel map.
	var m [5]byte
	for ch := 0; ch < ble.NumDataChannels; ch++ {
		if ch >= 10 && ch <= 19 {
			continue
		}
		m[ch/8] |= 1 << (ch % 8)
	}
	ind.LLData.ChannelMap = m
	conn, err := ble.Establish(ind)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := d.SoundingWithConnection(conn, geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumBands() != 27 {
		t.Fatalf("measured %d bands, want 27", snap.NumBands())
	}
	for _, ch := range snap.Bands {
		if ch >= 10 && ch <= 19 {
			t.Fatalf("blacklisted channel %d was measured", ch)
		}
	}
}
