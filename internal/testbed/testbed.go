// Package testbed assembles the simulated deployment of §7: a multipath
// room (rfsim), anchor antenna arrays on the walls (geom), a BLE tag, and
// the measurement campaign that produces the CSI snapshots (csi.Snapshot)
// the localization core consumes.
//
// Two measurement fidelities are provided and tested to agree:
//
//   - Sounding: channel-domain — the exact Eq. 2 channels are evaluated per
//     band and garbled with per-retune LO phase offsets and AWGN. This is
//     what the large position sweeps use.
//   - SoundingWaveform: waveform-domain — full GFSK sounding packets are
//     modulated, passed through the channel sample-by-sample and measured
//     back with the csi.Sounder DSP, exercising the entire PHY chain.
package testbed

import (
	"fmt"
	"math"
	"math/rand/v2"

	"bloc/internal/ble"
	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/radio"
	"bloc/internal/rfsim"
)

// Deployment is a configured testbed: environment, anchors and measurement
// parameters. Anchor 0 is the master (§3).
type Deployment struct {
	Env     *rfsim.Environment
	Anchors []geom.Array       // one array per anchor; anchor 0 is master
	Bands   []ble.ChannelIndex // bands measured per acquisition
	Noise   *rfsim.Noise       // channel-estimate noise (channel-domain path)

	// Access is the connection's access address (affects only waveforms).
	Access ble.AccessAddress
	// RunBits is the per-tone sounding run length for waveform mode.
	RunBits int
	// SPS is the waveform oversampling factor.
	SPS int
	// SampleNoiseSigma is the per-sample AWGN sigma for waveform mode.
	SampleNoiseSigma float64
	// TimingJitter, when positive, prepends up to this many noise samples
	// before each waveform-mode packet; receivers then time-align by
	// correlating against the known preamble+access-address prefix, as a
	// real passive anchor must (waveform mode only).
	TimingJitter int
	// Interferers are co-channel wideband transmitters (e.g. Wi-Fi);
	// they add noise to channel estimates on overlapping bands
	// (channel-domain acquisitions only).
	Interferers []Interferer

	seed uint64
	// oscillators: index 0 is the tag, 1..I the anchors.
	oscs []*rfsim.Oscillator
	rng  *rand.Rand
	// antErr[i][j] is the static calibration rotor of anchor i, antenna j
	// (hardware-fixed: shared across Forks).
	antErr [][]complex128
}

// Config carries the tunable parameters of New.
type Config struct {
	Anchors  int     // number of anchors (≥ 2)
	Antennas int     // antennas per anchor (≥ 2)
	Spacing  float64 // antenna spacing in meters (0 → λ/2 at 2.44 GHz)
	SNRdB    float64 // channel-estimate SNR referenced at 3 m (0 → noiseless)
	Seed     uint64
	// AntennaPhaseErrDeg is the 1-σ static per-antenna phase calibration
	// error in degrees (cable mismatch, mutual coupling, imperfect array
	// calibration). It is drawn once per deployment and applied to every
	// measurement on that antenna — the realism that separates idealized
	// array math from the meter-scale AoA errors real systems see. 0
	// disables it.
	AntennaPhaseErrDeg float64
}

// HalfWavelength is λ/2 at mid-band (2.44 GHz), the paper's array spacing.
const HalfWavelength = rfsim.SpeedOfLight / 2.44e9 / 2

// New builds a deployment in the given environment with anchors centered
// on the room walls (the paper's §7 layout: "anchor points are present on
// the 4 edges of the VICON room, in the centre of each edge"), arrays
// parallel to their wall with broadside facing into the room. With more
// than four anchors the extras are placed at the corners.
func New(env *rfsim.Environment, cfg Config) (*Deployment, error) {
	if cfg.Anchors < 2 {
		return nil, fmt.Errorf("testbed: need at least 2 anchors, got %d", cfg.Anchors)
	}
	if cfg.Antennas < 2 {
		return nil, fmt.Errorf("testbed: need at least 2 antennas, got %d", cfg.Antennas)
	}
	if cfg.Anchors > 8 {
		return nil, fmt.Errorf("testbed: at most 8 anchor sites supported, got %d", cfg.Anchors)
	}
	spacing := cfg.Spacing
	//lint:ignore floateq unset option sentinel is exactly zero
	if spacing == 0 {
		spacing = HalfWavelength
	}
	room := env.Room
	inset := 0.05 // arrays sit just inside the walls
	mid := room.Center()
	sites := []struct {
		center geom.Point
		axis   geom.Vector
	}{
		// Wall midpoints: south, north, west, east. Axis chosen so the
		// broadside (axis rotated +90°) points into the room.
		{geom.Pt(mid.X, room.Min.Y+inset), geom.Vec(1, 0)},  // south wall, broadside +Y
		{geom.Pt(mid.X, room.Max.Y-inset), geom.Vec(-1, 0)}, // north wall, broadside -Y
		{geom.Pt(room.Min.X+inset, mid.Y), geom.Vec(0, -1)}, // west wall, broadside +X
		{geom.Pt(room.Max.X-inset, mid.Y), geom.Vec(0, 1)},  // east wall, broadside -X
		// Corner sites for deployments beyond 4 anchors.
		{geom.Pt(room.Min.X+inset, room.Min.Y+inset), geom.Vec(1, -1).Unit()},
		{geom.Pt(room.Max.X-inset, room.Min.Y+inset), geom.Vec(1, 1).Unit()},
		{geom.Pt(room.Max.X-inset, room.Max.Y-inset), geom.Vec(-1, 1).Unit()},
		{geom.Pt(room.Min.X+inset, room.Max.Y-inset), geom.Vec(-1, -1).Unit()},
	}
	anchors := make([]geom.Array, cfg.Anchors)
	for i := range anchors {
		anchors[i] = geom.NewArray(sites[i].center, sites[i].axis, cfg.Antennas, spacing)
	}
	noise := rfsim.NoNoise()
	//lint:ignore floateq SNRdB == 0 selects the noiseless channel
	if cfg.SNRdB != 0 {
		noise = rfsim.NewNoise(cfg.SNRdB, 3, cfg.Seed^0xA5A5)
	}
	d := &Deployment{
		Env:     env,
		Anchors: anchors,
		Bands:   ble.DataChannels(),
		Noise:   noise,
		Access:  0x50F0B10C,
		RunBits: ble.DefaultRunBits,
		SPS:     4,
		seed:    cfg.Seed,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x7E57BED)),
	}
	d.oscs = make([]*rfsim.Oscillator, 1+cfg.Anchors)
	for i := range d.oscs {
		d.oscs[i] = rfsim.NewOscillator(cfg.Seed + uint64(i)*0x9E3779B97F4A7C15 + 1)
	}
	d.antErr = make([][]complex128, cfg.Anchors)
	calRng := rand.New(rand.NewPCG(cfg.Seed, 0xCA11B8A7E))
	sigma := cfg.AntennaPhaseErrDeg * math.Pi / 180
	for i := range d.antErr {
		d.antErr[i] = make([]complex128, cfg.Antennas)
		for j := range d.antErr[i] {
			phi := calRng.NormFloat64() * sigma
			s, c := math.Sincos(phi)
			d.antErr[i][j] = complex(c, s)
		}
	}
	return d, nil
}

// Master returns the master anchor's array (anchor 0).
func (d *Deployment) Master() geom.Array { return d.Anchors[0] }

// Fork returns an independent copy of the deployment sharing the (read-
// only) environment and anchor geometry but with its own oscillators and
// noise source, deterministically derived from the deployment seed and
// salt. Forks make measurement campaigns parallelizable and scheduling-
// independent: position i always measures with Fork(i) regardless of
// which worker runs it.
func (d *Deployment) Fork(salt uint64) *Deployment {
	out := *d
	seed := d.seed ^ (salt+1)*0x9E3779B97F4A7C15
	out.rng = rand.New(rand.NewPCG(seed, 0x7E57BED))
	out.oscs = make([]*rfsim.Oscillator, len(d.oscs))
	for i := range out.oscs {
		out.oscs[i] = rfsim.NewOscillator(seed + uint64(i)*0x9E3779B97F4A7C15 + 1)
	}
	if d.Noise.Sigma > 0 {
		out.Noise = rfsim.NewNoiseSigma(d.Noise.Sigma, seed^0xA5A5)
	}
	return &out
}

// retuneAll simulates every device hopping to a new band: all oscillators
// draw fresh phase offsets (§5.1).
func (d *Deployment) retuneAll() {
	for _, o := range d.oscs {
		o.Retune()
	}
}

// tagRotor returns e^{ι(φT − φRi)}: the distortion on a tag→anchor-i
// measurement.
func (d *Deployment) tagRotor(anchor int) complex128 {
	return d.oscs[0].Rotor() * conj(d.oscs[1+anchor].Rotor())
}

// masterRotor returns e^{ι(φR0 − φRi)}: the distortion on a
// master→anchor-i measurement.
func (d *Deployment) masterRotor(anchor int) complex128 {
	return d.oscs[1].Rotor() * conj(d.oscs[1+anchor].Rotor())
}

// Sounding performs one channel-domain CSI acquisition for a tag at the
// given position: for every band, every anchor measures the tag's
// transmission on all its antennas and every slave anchor overhears the
// master's response, with fresh LO phase offsets per band and AWGN on each
// channel estimate.
func (d *Deployment) Sounding(tag geom.Point) *csi.Snapshot {
	I := len(d.Anchors)
	J := d.Anchors[0].N
	snap := csi.NewSnapshot(d.Bands, I, J)

	// Enumerate paths once per geometry pair; they are band-independent.
	tagPaths := make([][][]rfsim.Path, I) // [anchor][antenna]
	masterPaths := make([][]rfsim.Path, I)
	masterAnt0 := d.Anchors[0].Antenna(0)
	for i, a := range d.Anchors {
		tagPaths[i] = make([][]rfsim.Path, J)
		for j := 0; j < J; j++ {
			tagPaths[i][j] = d.Env.Paths(tag, a.Antenna(j))
		}
		if i > 0 {
			masterPaths[i] = d.Env.Elevated().Paths(masterAnt0, a.Antenna(0))
		}
	}

	for b, ch := range d.Bands {
		f := ch.CenterFreq()
		d.retuneAll()
		for i := 0; i < I; i++ {
			rot := d.tagRotor(i)
			for j := 0; j < J; j++ {
				h := rfsim.ChannelFromPaths(tagPaths[i][j], f)
				snap.Tag[b][i][j] = d.applyInterference(ch, d.Noise.Apply(h*rot*d.antErr[i][j]))
			}
			if i > 0 {
				h := rfsim.ChannelFromPaths(masterPaths[i], f)
				snap.Master[b][i] = d.applyInterference(ch, d.Noise.Apply(h*d.masterRotor(i)*d.antErr[i][0]))
			}
		}
	}
	return snap
}

// SoundingWaveform performs one full PHY acquisition: sounding packets are
// GFSK-modulated, carried through the channel sample-by-sample, and the
// CSI is extracted by the csi.Sounder DSP. Orders of magnitude slower than
// Sounding; intended for PHY validation and microbenchmarks, typically on
// a reduced band list.
func (d *Deployment) SoundingWaveform(tag geom.Point) (*csi.Snapshot, error) {
	I := len(d.Anchors)
	J := d.Anchors[0].N
	snap := csi.NewSnapshot(d.Bands, I, J)

	masterAnt0 := d.Anchors[0].Antenna(0)
	for b, ch := range d.Bands {
		f := ch.CenterFreq()
		d.retuneAll()
		sounder, err := csi.NewSounder(d.Access, ch, d.RunBits, d.SPS)
		if err != nil {
			return nil, err
		}
		ref := sounder.Reference()
		detectRef := ref[:(1+4)*8*d.SPS] // preamble + access address prefix
		receive := func(h, rot complex128) (complex128, error) {
			rx := radio.ApplyChannel(ref, h, rot)
			if d.TimingJitter > 0 {
				// Unknown arrival time: bury the packet in leading and
				// trailing noise and recover alignment by correlation.
				lead := int(d.rng.Uint64() % uint64(d.TimingJitter+1))
				padded := make([]complex128, lead+len(rx)+d.TimingJitter)
				radio.AWGN(padded, maxf(d.SampleNoiseSigma, 1e-6), d.rng)
				radio.MixAdd(padded[lead:], rx)
				off, _, err := radio.Detect(padded, detectRef, 1)
				if err != nil {
					return 0, err
				}
				if off+len(ref) > len(padded) {
					return 0, fmt.Errorf("testbed: detected offset %d runs past buffer", off)
				}
				rx = padded[off : off+len(ref)]
			} else {
				radio.AWGN(rx, d.SampleNoiseSigma, d.rng)
			}
			m, err := sounder.Measure(rx)
			if err != nil {
				return 0, err
			}
			return m.Combined, nil
		}
		// Tag transmits; every anchor antenna receives and measures.
		for i := 0; i < I; i++ {
			rot := d.tagRotor(i)
			for j := 0; j < J; j++ {
				h := rfsim.ChannelFromPaths(d.Env.Paths(tag, d.Anchors[i].Antenna(j)), f)
				v, err := receive(h, rot*d.antErr[i][j])
				if err != nil {
					return nil, fmt.Errorf("testbed: band %v anchor %d antenna %d: %w", ch, i, j, err)
				}
				snap.Tag[b][i][j] = v
			}
		}
		// Master responds on the same band; slaves overhear on antenna 0.
		for i := 1; i < I; i++ {
			h := rfsim.ChannelFromPaths(d.Env.Elevated().Paths(masterAnt0, d.Anchors[i].Antenna(0)), f)
			v, err := receive(h, d.masterRotor(i)*d.antErr[i][0])
			if err != nil {
				return nil, fmt.Errorf("testbed: band %v master overhear anchor %d: %w", ch, i, err)
			}
			snap.Master[b][i] = v
		}
	}
	return snap, nil
}

// TrueChannels returns the noiseless, offset-free physical channels for a
// tag position — the ground-truth h (not ĥ) used by tests and by the
// phase-correction microbenchmark (Fig. 8b).
func (d *Deployment) TrueChannels(tag geom.Point) *csi.Snapshot {
	I := len(d.Anchors)
	J := d.Anchors[0].N
	snap := csi.NewSnapshot(d.Bands, I, J)
	masterAnt0 := d.Anchors[0].Antenna(0)
	for b, ch := range d.Bands {
		f := ch.CenterFreq()
		for i, a := range d.Anchors {
			for j := 0; j < J; j++ {
				snap.Tag[b][i][j] = rfsim.ChannelFromPaths(d.Env.Paths(tag, a.Antenna(j)), f)
			}
			if i > 0 {
				snap.Master[b][i] = rfsim.ChannelFromPaths(d.Env.Elevated().Paths(masterAnt0, a.Antenna(0)), f)
			}
		}
	}
	return snap
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// channelWithRotor evaluates a path set at a frequency and applies an LO
// rotor — the shared step of reference measurements.
func channelWithRotor(paths []rfsim.Path, freqHz float64, rotor complex128) complex128 {
	return rfsim.ChannelFromPaths(paths, freqHz) * rotor
}

// CalibrationSounding measures the reference transmissions each anchor
// uses to self-calibrate its antenna phases: for anchor i, antenna 0 of
// the next anchor ((i+1) mod I) transmits and anchor i measures the
// channel on every antenna, per band, with LO offsets and calibration
// errors applied exactly as in live measurements. It returns the
// measurements (meas[k][i][j]) and the transmitter position used for each
// anchor. Reference links are anchor-height (Elevated), as in Sounding.
func (d *Deployment) CalibrationSounding() (meas [][][]complex128, txPos []geom.Point) {
	I := len(d.Anchors)
	J := d.Anchors[0].N
	txPos = make([]geom.Point, I)
	paths := make([][][]rfsim.Path, I)
	for i := range d.Anchors {
		tx := d.Anchors[(i+1)%I].Antenna(0)
		txPos[i] = tx
		paths[i] = make([][]rfsim.Path, J)
		for j := 0; j < J; j++ {
			paths[i][j] = d.Env.Elevated().Paths(tx, d.Anchors[i].Antenna(j))
		}
	}
	meas = make([][][]complex128, len(d.Bands))
	for b, ch := range d.Bands {
		f := ch.CenterFreq()
		d.retuneAll()
		meas[b] = make([][]complex128, I)
		for i := 0; i < I; i++ {
			// TX oscillator of the (i+1)%I anchor, RX oscillator of i.
			rot := d.oscs[1+(i+1)%I].Rotor() * conj(d.oscs[1+i].Rotor())
			row := make([]complex128, J)
			for j := 0; j < J; j++ {
				h := rfsim.ChannelFromPaths(paths[i][j], f)
				row[j] = d.Noise.Apply(h * rot * d.antErr[i][j])
			}
			meas[b][i] = row
		}
	}
	return meas, txPos
}

// TrueAntennaError returns the simulated calibration rotor of anchor i,
// antenna j, relative to that anchor's antenna 0 — ground truth for
// calibration tests.
func (d *Deployment) TrueAntennaError(i, j int) complex128 {
	return d.antErr[i][j] * conj(d.antErr[i][0])
}

// SoundingMoving performs a channel-domain acquisition while the tag
// moves: band k is measured with the tag at pos(k). A full 37-band hop
// cycle takes ≈280 ms at the fastest connection interval (§6: 40 cycles
// per second hop through all channels), so a tag walking at 1 m/s moves
// ≈28 cm within one acquisition — the coherent cross-band combining then
// sees an inconsistent geometry. This is the motion-smearing regime the
// paper's static evaluation avoids.
func (d *Deployment) SoundingMoving(pos func(band int) geom.Point) *csi.Snapshot {
	I := len(d.Anchors)
	J := d.Anchors[0].N
	snap := csi.NewSnapshot(d.Bands, I, J)
	masterAnt0 := d.Anchors[0].Antenna(0)
	// Master-leg paths are static; tag paths change per band.
	masterPaths := make([][]rfsim.Path, I)
	for i := 1; i < I; i++ {
		masterPaths[i] = d.Env.Elevated().Paths(masterAnt0, d.Anchors[i].Antenna(0))
	}
	for b, ch := range d.Bands {
		f := ch.CenterFreq()
		tag := pos(b)
		d.retuneAll()
		for i := 0; i < I; i++ {
			rot := d.tagRotor(i)
			for j := 0; j < J; j++ {
				h := rfsim.ChannelFromPaths(d.Env.Paths(tag, d.Anchors[i].Antenna(j)), f)
				snap.Tag[b][i][j] = d.applyInterference(ch, d.Noise.Apply(h*rot*d.antErr[i][j]))
			}
			if i > 0 {
				h := rfsim.ChannelFromPaths(masterPaths[i], f)
				snap.Master[b][i] = d.applyInterference(ch, d.Noise.Apply(h*d.masterRotor(i)*d.antErr[i][0]))
			}
		}
	}
	return snap
}

// SoundingWithConnection performs a channel-domain acquisition whose band
// order is driven by a live link-layer connection: one full hop cycle of
// the connection (§2.1) is one acquisition. The connection advances by a
// full cycle; blacklisted channels in its map are simply never measured.
// The snapshot's band list reflects the order actually hopped, which the
// localization engine is invariant to (each band carries its frequency).
func (d *Deployment) SoundingWithConnection(conn *ble.Connection, tag geom.Point) (*csi.Snapshot, error) {
	cycle, err := conn.SoundingCycle()
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	saved := d.Bands
	d.Bands = cycle
	snap := d.Sounding(tag)
	d.Bands = saved
	return snap, nil
}

// CTESounding performs a Bluetooth 5.1 direction-finding acquisition: the
// tag appends a constant tone to a packet on the given channel; every
// anchor antenna-switches through its array sampling the tone, then
// recovers per-antenna relative channels with the CTE estimator. Sample
// noise and a per-acquisition crystal offset (CFO) are applied. The
// result is one complex vector per anchor (antenna 0 normalized), the
// input of a CTE AoA estimator.
func (d *Deployment) CTESounding(tag geom.Point, channel ble.ChannelIndex, sampleSigma float64) ([][]complex128, error) {
	if !channel.Valid() {
		return nil, fmt.Errorf("testbed: invalid channel %d", channel)
	}
	f := channel.CenterFreq()
	cfg := ble.DefaultCTEConfig(d.Anchors[0].N)
	// One crystal offset per acquisition, shared by every observer (it is
	// the tag's clock): ±30 kHz, BLE's post-sync tolerance.
	cfo := (d.rng.Float64()*2 - 1) * 30e3
	d.retuneAll()
	out := make([][]complex128, len(d.Anchors))
	for i, a := range d.Anchors {
		h := make([]complex128, a.N)
		for j := 0; j < a.N; j++ {
			ch := rfsim.ChannelFromPaths(d.Env.Paths(tag, a.Antenna(j)), f)
			h[j] = ch * d.antErr[i][j]
		}
		samples, err := ble.SimulateCTE(cfg, h, d.tagRotor(i), cfo)
		if err != nil {
			return nil, err
		}
		if sampleSigma > 0 {
			for si := range samples {
				samples[si].IQ += complex(d.rng.NormFloat64()*sampleSigma, d.rng.NormFloat64()*sampleSigma)
			}
		}
		est, _, err := ble.EstimateCTE(cfg, samples)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}
