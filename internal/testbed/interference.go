package testbed

import (
	"fmt"
	"math"
	"math/cmplx"

	"bloc/internal/ble"
	"bloc/internal/dsp"
)

// Wi-Fi interference and adaptive frequency hopping — the mechanism
// behind §8.6: BLE coexists with Wi-Fi in the 2.4 GHz band, blacklists
// channels that see interference, and BLoc must keep localizing on the
// survivors. An Interferer raises the effective noise floor of every BLE
// band its spectrum overlaps; DetectInterference reproduces the
// measurement a real stack performs (per-channel energy statistics) and
// returns the channel map a connection would adopt.

// Interferer is a wideband co-channel transmitter (e.g. one 20 MHz Wi-Fi
// channel).
type Interferer struct {
	CenterHz float64
	SpanHz   float64
	// Sigma is the per-component noise standard deviation added to every
	// channel estimate on overlapping BLE bands.
	Sigma float64
}

// Overlaps reports whether the interferer covers the BLE channel.
func (w Interferer) Overlaps(ch ble.ChannelIndex) bool {
	f := ch.CenterFreq()
	half := (w.SpanHz + ble.ChannelWidthHz) / 2
	return math.Abs(f-w.CenterHz) < half
}

// WiFiChannel returns an Interferer modeling a 20 MHz Wi-Fi channel
// (1–13) at the given noise sigma.
func WiFiChannel(number int, sigma float64) (Interferer, error) {
	if number < 1 || number > 13 {
		return Interferer{}, fmt.Errorf("testbed: Wi-Fi channel %d outside [1,13]", number)
	}
	return Interferer{
		CenterHz: 2407e6 + float64(number)*5e6,
		SpanHz:   20e6,
		Sigma:    sigma,
	}, nil
}

// interferenceSigma returns the total extra noise sigma on a BLE channel
// from all interferers (powers add).
func (d *Deployment) interferenceSigma(ch ble.ChannelIndex) float64 {
	var power float64
	for _, w := range d.Interferers {
		if w.Overlaps(ch) {
			power += w.Sigma * w.Sigma
		}
	}
	return math.Sqrt(power)
}

// applyInterference corrupts a channel estimate with the interferers
// overlapping the band.
func (d *Deployment) applyInterference(ch ble.ChannelIndex, h complex128) complex128 {
	sigma := d.interferenceSigma(ch)
	//lint:ignore floateq sigma == 0 means interference is off
	if sigma == 0 {
		return h
	}
	return h + complex(d.rng.NormFloat64()*sigma, d.rng.NormFloat64()*sigma)
}

// DetectInterference measures per-channel energy stability the way a
// real BLE stack drives its channel-map updates: the master transmits a
// reference on every band `rounds` times; anchor 1 records the magnitude
// of each estimate (magnitudes are immune to the per-retune LO phase);
// channels whose magnitude deviation exceeds `factor` times the median
// deviation are blacklisted. It returns the surviving channel list,
// always keeping at least two channels (the specification's minimum).
func (d *Deployment) DetectInterference(rounds int, factor float64) []ble.ChannelIndex {
	if rounds < 2 {
		rounds = 4
	}
	if factor <= 1 {
		factor = 3
	}
	K := len(d.Bands)
	mags := make([][]float64, K)
	masterAnt0 := d.Anchors[0].Antenna(0)
	rxAnt := d.Anchors[1].Antenna(0)
	paths := d.Env.Elevated().Paths(masterAnt0, rxAnt)
	for r := 0; r < rounds; r++ {
		for b, ch := range d.Bands {
			d.retuneAll()
			h := channelWithRotor(paths, ch.CenterFreq(), d.masterRotor(1))
			h = d.Noise.Apply(h)
			h = d.applyInterference(ch, h)
			mags[b] = append(mags[b], cmplx.Abs(h))
		}
	}
	devs := make([]float64, K)
	for b := range mags {
		devs[b] = dsp.Stddev(mags[b])
	}
	median := dsp.Median(devs)
	if median <= 0 {
		median = 1e-12
	}
	var used []ble.ChannelIndex
	for b, ch := range d.Bands {
		if devs[b] <= factor*median {
			used = append(used, ch)
		}
	}
	if len(used) < 2 {
		// Keep the two quietest channels no matter what.
		best, second := 0, 1
		if devs[second] < devs[best] {
			best, second = second, best
		}
		for b := 2; b < K; b++ {
			switch {
			case devs[b] < devs[best]:
				best, second = b, best
			case devs[b] < devs[second]:
				second = b
			}
		}
		used = []ble.ChannelIndex{d.Bands[best], d.Bands[second]}
	}
	return used
}
