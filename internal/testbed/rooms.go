package testbed

import (
	"bloc/internal/geom"
	"bloc/internal/rfsim"
)

// PaperRoom returns the 5 m × 6 m footprint of the paper's VICON room,
// centered at the origin: x ∈ [−2.5, 2.5], y ∈ [−3, 3] (matching the axes
// of Fig. 7c and Fig. 13).
func PaperRoom() geom.Rect {
	return geom.NewRect(geom.Pt(-2.5, -3), geom.Pt(2.5, 3))
}

// PaperEnvironment builds the multipath-rich room of §7: the VICON space
// "full of metallic objects, like robotic equipment, large metal
// cupboards", modeled as strong diffuse scatterers near the walls plus
// specular wall reflections. Deterministic in seed.
func PaperEnvironment(seed uint64) *rfsim.Environment {
	env := rfsim.NewEnvironment(PaperRoom(), seed)
	env.WallReflectivity = 0.45
	env.SecondOrderWalls = true
	// Strong metallic reflectors (cupboards, robot racks) parked close to
	// the north, east and west anchors: their bistatic returns arrive at
	// those anchors from directions far off the direct path and with
	// comparable strength, which is what defeats angle-only localization
	// in the real room. The south side — where the master anchor the tag
	// connects to sits — is kept clearer, as a tag would in practice pair
	// with the anchor it has the best link to.
	env.AddScatterer(rfsim.Scatterer{
		Center: geom.Pt(-1.6, 2.5), Radius: 0.35, Gain: 6.0, Facets: 7,
	})
	env.AddScatterer(rfsim.Scatterer{
		Center: geom.Pt(2.2, 1.1), Radius: 0.30, Gain: 6.0, Facets: 6,
	})
	env.AddScatterer(rfsim.Scatterer{
		Center: geom.Pt(-2.15, -1.0), Radius: 0.25, Gain: 5.0, Facets: 5,
	})
	// Free-standing equipment cart mid-room.
	env.AddScatterer(rfsim.Scatterer{
		Center: geom.Pt(0.5, 0.6), Radius: 0.2, Gain: 2.0, Facets: 4,
	})
	// Desk-height clutter obstructing many tag links to the north, east
	// and west anchors — the paper's "reflections might actually be
	// stronger than the line-of-sight path because of obstructions".
	for _, o := range []rfsim.Obstacle{
		{Wall: geom.Seg(geom.Pt(-1.5, 1.0), geom.Pt(0.0, 1.4)), Attenuation: 0.3, TagHeightOnly: true},
		{Wall: geom.Seg(geom.Pt(0.8, 0.2), geom.Pt(1.8, 0.8)), Attenuation: 0.3, TagHeightOnly: true},
		{Wall: geom.Seg(geom.Pt(-2.0, -0.2), geom.Pt(-1.0, 0.2)), Attenuation: 0.35, TagHeightOnly: true},
	} {
		if err := env.AddObstacle(o); err != nil {
			panic(err) // static obstacle table; cannot fail
		}
	}
	return env
}

// CleanEnvironment builds a low-multipath, line-of-sight space (§8.1's
// "relatively multipath free environment" used for the phase-correction
// microbenchmark, Fig. 8b): weakly reflective walls and no scatterers.
func CleanEnvironment(seed uint64) *rfsim.Environment {
	env := rfsim.NewEnvironment(PaperRoom(), seed)
	env.WallReflectivity = 0.05
	env.SecondOrderWalls = false
	return env
}

// PaperConfig returns the default deployment configuration of §7: four
// 4-antenna anchors at λ/2 spacing with a 25 dB channel-estimate SNR.
func PaperConfig(seed uint64) Config {
	return Config{Anchors: 4, Antennas: 4, SNRdB: 25, Seed: seed}
}

// Paper builds the complete §7 testbed in one call.
func Paper(seed uint64) (*Deployment, error) {
	return New(PaperEnvironment(seed), PaperConfig(seed))
}
