package core

import (
	"math"

	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// Candidate is one likelihood peak with the quantities Eq. 18 combines.
type Candidate struct {
	Loc       geom.Point // room coordinates of the peak
	PeakValue float64    // p_x: joint likelihood at the peak
	Entropy   float64    // H: spatial negentropy of the 7×7 neighborhood
	SumDist   float64    // Σ_i d_i: total distance from all anchors
	Score     float64    // s_x = p_x · e^{bH − aΣd}
}

// candidates extracts likelihood peaks and computes their Eq. 18 scores.
func (e *Engine) candidates(grid *dsp.Grid) []Candidate {
	return e.candidatesIn(grid, 0, 0, grid.W, grid.H)
}

// candidatesIn is candidates with the peak scan restricted to the
// half-open cell rect [x0,x1)×[y0,y1). The caller guarantees every
// above-threshold cell lies inside the rect (the gated path paints only
// there), so the rect maximum is the global maximum and the restricted
// scan reports the same peaks as a full one.
func (e *Engine) candidatesIn(grid *dsp.Grid, x0, y0, x1, y1 int) []Candidate {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > grid.W {
		x1 = grid.W
	}
	if y1 > grid.H {
		y1 = grid.H
	}
	var gmax float64
	for iy := y0; iy < y1; iy++ {
		row := grid.Data[iy*grid.W+x0 : iy*grid.W+x1]
		for _, v := range row {
			if v > gmax {
				gmax = v
			}
		}
	}
	peakBuf := e.getPeaks()
	peaks := grid.FindPeaksRectInto(*peakBuf, e.cfg.PeakMinFrac, e.cfg.PeakMinSepCells, gmax, x0, y0, x1, y1)
	out := make([]Candidate, 0, len(peaks))
	scratch := e.getFloats(e.cfg.EntropyWindow * e.cfg.EntropyWindow)
	for _, p := range peaks {
		loc := e.GridPoint(p)
		var sumDist float64
		for _, a := range e.anchors {
			sumDist += loc.Dist(a.Center())
		}
		h := grid.PeakNegentropyScratch(p.IX, p.IY, e.cfg.EntropyWindow, e.cfg.EntropyStride, *scratch)
		score := p.Value * math.Exp(e.cfg.ScoreB*h-e.cfg.ScoreA*sumDist)
		out = append(out, Candidate{
			Loc:       loc,
			PeakValue: p.Value,
			Entropy:   h,
			SumDist:   sumDist,
			Score:     score,
		})
	}
	e.putFloats(scratch)
	*peakBuf = peaks // keep any regrown backing array
	e.putPeaks(peakBuf)
	return out
}

// bestByScore returns the candidate with the maximum Eq. 18 score.
func bestByScore(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Score > best.Score {
			best = c
		}
	}
	return best, true
}

// bestByShortestDistance returns the candidate with the minimum total
// distance — the naive direct-path selector of §8.7's baseline.
func bestByShortestDistance(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.SumDist < best.SumDist {
			best = c
		}
	}
	return best, true
}
