package core

import (
	"math"

	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// Candidate is one likelihood peak with the quantities Eq. 18 combines.
type Candidate struct {
	Loc       geom.Point // room coordinates of the peak
	PeakValue float64    // p_x: joint likelihood at the peak
	Entropy   float64    // H: spatial negentropy of the 7×7 neighborhood
	SumDist   float64    // Σ_i d_i: total distance from all anchors
	Score     float64    // s_x = p_x · e^{bH − aΣd}
}

// candidates extracts likelihood peaks and computes their Eq. 18 scores.
func (e *Engine) candidates(grid *dsp.Grid) []Candidate {
	peakBuf := e.getPeaks()
	peaks := grid.FindPeaksInto(*peakBuf, e.cfg.PeakMinFrac, e.cfg.PeakMinSepCells)
	out := make([]Candidate, 0, len(peaks))
	scratch := e.getFloats(e.cfg.EntropyWindow * e.cfg.EntropyWindow)
	for _, p := range peaks {
		loc := e.GridPoint(p)
		var sumDist float64
		for _, a := range e.anchors {
			sumDist += loc.Dist(a.Center())
		}
		h := grid.PeakNegentropyScratch(p.IX, p.IY, e.cfg.EntropyWindow, e.cfg.EntropyStride, *scratch)
		score := p.Value * math.Exp(e.cfg.ScoreB*h-e.cfg.ScoreA*sumDist)
		out = append(out, Candidate{
			Loc:       loc,
			PeakValue: p.Value,
			Entropy:   h,
			SumDist:   sumDist,
			Score:     score,
		})
	}
	e.putFloats(scratch)
	*peakBuf = peaks // keep any regrown backing array
	e.putPeaks(peakBuf)
	return out
}

// bestByScore returns the candidate with the maximum Eq. 18 score.
func bestByScore(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Score > best.Score {
			best = c
		}
	}
	return best, true
}

// bestByShortestDistance returns the candidate with the minimum total
// distance — the naive direct-path selector of §8.7's baseline.
func bestByShortestDistance(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.SumDist < best.SumDist {
			best = c
		}
	}
	return best, true
}
