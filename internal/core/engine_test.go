package core

import (
	"math"
	"math/cmplx"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/rfsim"
	"bloc/internal/testbed"
)

func paperEngine(t *testing.T, d *testbed.Deployment) *Engine {
	t.Helper()
	e, err := NewEngine(d.Anchors, DefaultConfig(d.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	room := testbed.PaperRoom()
	anchors := []geom.Array{
		geom.NewArray(geom.Pt(0, -2.95), geom.Vec(1, 0), 4, 0.06),
		geom.NewArray(geom.Pt(0, 2.95), geom.Vec(-1, 0), 4, 0.06),
	}
	if _, err := NewEngine(anchors[:1], DefaultConfig(room)); err == nil {
		t.Error("single anchor should be rejected")
	}
	bad := DefaultConfig(room)
	bad.CellM = 0
	if _, err := NewEngine(anchors, bad); err == nil {
		t.Error("zero cell size should be rejected")
	}
	bad2 := DefaultConfig(room)
	bad2.EntropyWindow = 1
	if _, err := NewEngine(anchors, bad2); err == nil {
		t.Error("tiny entropy window should be rejected")
	}
	bad3 := DefaultConfig(geom.NewRect(geom.Pt(0, 0), geom.Pt(0, 5)))
	if _, err := NewEngine(anchors, bad3); err == nil {
		t.Error("degenerate room should be rejected")
	}
	e, err := NewEngine(anchors, DefaultConfig(room))
	if err != nil {
		t.Fatal(err)
	}
	nx, ny := e.GridSize()
	if nx < 90 || ny < 110 {
		t.Errorf("grid %dx%d unexpectedly small for a 5x6 room at 5 cm", nx, ny)
	}
	// Cell centers tile the room.
	if p := e.CellCenter(0, 0); p != room.Min {
		t.Errorf("first cell = %v, want %v", p, room.Min)
	}
}

func TestLocateFreeSpaceExact(t *testing.T) {
	// Free space, no noise, offsets on: BLoc must land within a few cells
	// of the truth. This is the fundamental closed-loop test of
	// Correct + Eq. 17 + peak selection.
	env := testbed.CleanEnvironment(1)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	for _, tag := range []geom.Point{
		geom.Pt(0.7, -0.4),
		geom.Pt(-1.5, 1.8),
		geom.Pt(0, 0),
		geom.Pt(1.9, 2.2),
	} {
		res, err := e.Locate(d.Sounding(tag))
		if err != nil {
			t.Fatal(err)
		}
		if errM := res.Estimate.Dist(tag); errM > 0.15 {
			t.Errorf("tag %v: error %.3f m, want < 0.15", tag, errM)
		}
	}
}

func TestLocateRobustToLOOffsets(t *testing.T) {
	// The same tag, measured twice (different random offsets per band):
	// both estimates must agree with the truth — offsets are fully
	// cancelled, not just averaged out.
	env := testbed.CleanEnvironment(5)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(-0.8, 0.9)
	r1, err := e.Locate(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Locate(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Estimate.Dist(tag) > 0.15 || r2.Estimate.Dist(tag) > 0.15 {
		t.Errorf("estimates %v / %v far from tag %v", r1.Estimate, r2.Estimate, tag)
	}
}

func TestAlphaPhaseLinearAcrossBands(t *testing.T) {
	// Fig. 8b: in a clean LOS setup the corrected channel phase varies
	// linearly with frequency; the raw measured phase does not. Quantify
	// with the R² of a linear fit on unwrapped phases.
	env := testbed.CleanEnvironment(2)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tag := geom.Pt(0.5, 0.5)
	snap := d.Sounding(tag)
	a, err := Correct(snap)
	if err != nil {
		t.Fatal(err)
	}
	K := a.NumBands()
	x := make([]float64, K)
	corrected := make([]float64, K)
	raw := make([]float64, K)
	for k := 0; k < K; k++ {
		x[k] = snap.Freqs[k]
		corrected[k] = cmplx.Phase(a.Values[k][1][0])
		raw[k] = cmplx.Phase(snap.Tag[k][1][0])
	}
	_, _, r2c := dsp.LinearFit(x, dsp.Unwrap(corrected))
	_, _, r2r := dsp.LinearFit(x, dsp.Unwrap(raw))
	if r2c < 0.999 {
		t.Errorf("corrected phase R² = %v, want ≈ 1 (linear)", r2c)
	}
	if r2r > 0.9 {
		t.Errorf("raw phase R² = %v — offsets should destroy linearity", r2r)
	}
}

func TestAngleLikelihoodPeaksAtTrueDirection(t *testing.T) {
	env := testbed.CleanEnvironment(3)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(1.2, 0.3)
	a, err := Correct(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	spec := e.angleSpectrum(a.Freqs, a.Values, nil, 0)
	best := dsp.ArgMax(spec)
	gotTheta := e.thetas[best]
	wantTheta := d.Anchors[0].AngleTo(tag)
	if math.Abs(gotTheta-wantTheta) > geom.Rad(3) {
		t.Errorf("angle peak at %.1f°, want %.1f°",
			geom.Deg(gotTheta), geom.Deg(wantTheta))
	}
}

func TestDistanceLikelihoodPeaksAtTrueRelativeDistance(t *testing.T) {
	env := testbed.CleanEnvironment(4)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 3, Antennas: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(-0.9, 1.1)
	a, err := Correct(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		spec := e.distanceSpectrum(a, i)
		best := dsp.ArgMax(spec)
		got := e.deltas[best]
		want := tag.Dist(d.Anchors[i].Antenna(0)) - tag.Dist(d.Anchors[0].Antenna(0))
		// With 80 MHz of bandwidth the distance resolution is c/BW ≈
		// 3.75 m, but the peak center should still be close.
		if math.Abs(got-want) > 0.5 {
			t.Errorf("anchor %d: Δ peak %.2f m, want %.2f m", i, got, want)
		}
	}
}

func TestLikelihoodXYMaxNearTag(t *testing.T) {
	// The combined likelihood (Fig. 6c) must put its global maximum near
	// the true location in a clean environment.
	env := testbed.CleanEnvironment(6)
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(0.4, -1.3)
	a, err := Correct(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	grid, per := e.Likelihood(a)
	if len(per) != 4 {
		t.Fatalf("per-anchor maps = %d", len(per))
	}
	_, ix, iy := grid.Max()
	if e.CellCenter(ix, iy).Dist(tag) > 0.3 {
		t.Errorf("likelihood max at %v, tag at %v", e.CellCenter(ix, iy), tag)
	}
}

func TestHyperbolaShape(t *testing.T) {
	// Fig. 6b: the distance-only XY likelihood is constant along the
	// hyperbola Δ(p) = const. Verify two points with equal Δ score
	// (nearly) equally and a point with different Δ scores differently.
	env := testbed.CleanEnvironment(8)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(0.5, 0)
	a, err := Correct(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	xy := e.DistanceLikelihoodXY(a, 1)
	// All cells whose Δ equals the tag's Δ (within a cell) should carry
	// high likelihood relative to the map maximum.
	ant0 := d.Anchors[1].Antenna(0)
	master0 := d.Anchors[0].Antenna(0)
	wantDelta := tag.Dist(ant0) - tag.Dist(master0)
	gmax, _, _ := xy.Max()
	nx, ny := e.GridSize()
	onCurve := 0
	lowOnCurve := 0
	for iy := 0; iy < ny; iy += 2 {
		for ix := 0; ix < nx; ix += 2 {
			p := e.CellCenter(ix, iy)
			delta := p.Dist(ant0) - p.Dist(master0)
			if math.Abs(delta-wantDelta) < 0.05 {
				onCurve++
				if xy.At(ix, iy) < 0.5*gmax {
					lowOnCurve++
				}
			}
		}
	}
	if onCurve < 10 {
		t.Fatalf("only %d sampled cells on the hyperbola", onCurve)
	}
	if lowOnCurve > onCurve/5 {
		t.Errorf("%d/%d hyperbola cells have low likelihood — not a ridge", lowOnCurve, onCurve)
	}
}

func TestLocateErrors(t *testing.T) {
	d, err := testbed.Paper(1)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	if _, err := e.Locate(&csi.Snapshot{}); err == nil {
		t.Error("empty snapshot should fail")
	}
	// Wrong anchor count.
	d2, err := testbed.New(testbed.PaperEnvironment(1), testbed.Config{Anchors: 3, Antennas: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Locate(d2.Sounding(geom.Pt(0, 0))); err == nil {
		t.Error("anchor count mismatch should fail")
	}
}

func TestLocateWithNoise(t *testing.T) {
	// 25 dB channel-estimate SNR in the clean room: error stays small.
	env := testbed.CleanEnvironment(9)
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, SNRdB: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(-1.1, -0.7)
	res, err := e.Locate(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Dist(tag) > 0.35 {
		t.Errorf("noisy clean-room error %.3f m too large", res.Estimate.Dist(tag))
	}
}

func TestShortestPathRemainsShortestUnderCorrection(t *testing.T) {
	// §5.4 first observation: relative distances preserve path ordering —
	// the reference distance is subtracted from all paths, so the direct
	// path's relative distance stays the profile's dominant, earliest
	// component. Build a geometry where direct and reflected paths differ
	// by more than the 80 MHz resolution (c/BW ≈ 3.75 m) and verify the
	// profile is maximal near the direct Δ and clearly weaker at the
	// reflection's ghost Δ.
	env := rfsim.NewEnvironment(testbed.PaperRoom(), 3)
	env.WallReflectivity = 0
	scat := geom.Pt(2.3, -2.7)
	env.AddScatterer(rfsim.Scatterer{Center: scat, Radius: 0.02, Gain: 2.0, Facets: 1})
	d, err := testbed.New(env, testbed.Config{Anchors: 3, Antennas: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(-2, -2.5)
	a, err := Correct(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	spec := e.distanceSpectrum(a, 1)
	ant1 := d.Anchors[1].Antenna(0)
	master0 := d.Anchors[0].Antenna(0)
	directDelta := tag.Dist(ant1) - tag.Dist(master0)
	// Ghost created by the reflected master leg: the tag→master reference
	// travels via the scatterer, shifting the apparent Δ down.
	ghostDelta := tag.Dist(ant1) - (tag.Dist(scat) + scat.Dist(master0))

	at := func(delta float64) float64 {
		best := 0
		for i := range e.deltas {
			if math.Abs(e.deltas[i]-delta) < math.Abs(e.deltas[best]-delta) {
				best = i
			}
		}
		return spec[best]
	}
	peakDelta := e.deltas[dsp.ArgMax(spec)]
	if math.Abs(peakDelta-directDelta) > 1.0 {
		t.Errorf("profile max at Δ=%.2f, direct Δ=%.2f", peakDelta, directDelta)
	}
	if at(ghostDelta) >= at(directDelta) {
		t.Errorf("ghost Δ=%.2f (%.3f) not weaker than direct Δ=%.2f (%.3f)",
			ghostDelta, at(ghostDelta), directDelta, at(directDelta))
	}
}

func BenchmarkLocatePaperRoom(b *testing.B) {
	d, err := testbed.Paper(1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(d.Anchors, DefaultConfig(d.Env.Room))
	if err != nil {
		b.Fatal(err)
	}
	snap := d.Sounding(geom.Pt(0.6, -0.9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Locate(snap); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	d, err := testbed.Paper(95)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	if e.Config().ScoreA != 0.1 {
		t.Errorf("Config().ScoreA = %v", e.Config().ScoreA)
	}
	if len(e.Anchors()) != 4 {
		t.Errorf("Anchors() = %d", len(e.Anchors()))
	}
}

func TestLocateFromWaveformAcquisition(t *testing.T) {
	// Full-stack fidelity: localizing from waveform-level acquisitions
	// (GFSK packets through the channel, CSI extracted by DSP, packet
	// timing recovered by correlation) must agree with the channel-domain
	// path to within the grid resolution.
	env := testbed.PaperEnvironment(97)
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	d.TimingJitter = 100
	d.SampleNoiseSigma = 1e-5
	e := paperEngine(t, d)
	for _, tag := range []geom.Point{geom.Pt(0.7, -0.8), geom.Pt(-1.1, 1.4)} {
		cd, err := e.Locate(d.Fork(1).Sounding(tag))
		if err != nil {
			t.Fatal(err)
		}
		wfSnap, err := d.Fork(1).SoundingWaveform(tag)
		if err != nil {
			t.Fatal(err)
		}
		wf, err := e.Locate(wfSnap)
		if err != nil {
			t.Fatal(err)
		}
		if d := cd.Estimate.Dist(wf.Estimate); d > 0.15 {
			t.Errorf("tag %v: waveform estimate %.2f m from channel-domain estimate", tag, d)
		}
	}
}
