package core

import (
	"math"
	"sync"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// The golden tests pin the optimized plane/pool/tile kernels to the
// reference kernels (reference.go): every figure the engine can produce
// must agree within 1e-9, on full snapshots and on degraded
// (partial-presence) ones, because the optimized path is the one every
// production caller uses.

const goldenTol = 1e-9

// closeTo compares with a tolerance scaled by magnitude: raw polar
// likelihoods reach O(K·J) while normalized maps live in [0, 1].
func closeTo(a, b float64) bool {
	scale := math.Abs(a)
	if s := math.Abs(b); s > scale {
		scale = s
	}
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= goldenTol*scale
}

func requireGridsEqual(t *testing.T, name string, got, want *dsp.Grid) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("%s: dimensions %dx%d != %dx%d", name, got.W, got.H, want.W, want.H)
	}
	for i := range want.Data {
		if !closeTo(got.Data[i], want.Data[i]) {
			t.Fatalf("%s: cell %d: got %v, want %v (diff %g)",
				name, i, got.Data[i], want.Data[i], math.Abs(got.Data[i]-want.Data[i]))
		}
	}
}

func requireSpecEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if !closeTo(got[i], want[i]) {
			t.Fatalf("%s: index %d: got %v, want %v", name, i, got[i], want[i])
		}
	}
}

// checkKernelParity runs every optimized kernel against its reference
// twin on one corrected snapshot.
func checkKernelParity(t *testing.T, e *Engine, a *Alpha) {
	t.Helper()
	combined, perAnchor := e.Likelihood(a)
	refCombined, refPerAnchor := e.LikelihoodReference(a)
	requireGridsEqual(t, "combined likelihood", combined, refCombined)
	for i := range refPerAnchor {
		if (perAnchor[i] == nil) != (refPerAnchor[i] == nil) {
			t.Fatalf("anchor %d: perAnchor nil mismatch (opt=%v ref=%v)",
				i, perAnchor[i] == nil, refPerAnchor[i] == nil)
		}
		if refPerAnchor[i] != nil {
			requireGridsEqual(t, "per-anchor map", perAnchor[i], refPerAnchor[i])
		}
	}
	for i := range e.anchors {
		if a.PresentBands(i) == 0 {
			continue
		}
		polar := e.polarLikelihood(a, i)
		refPolar := e.referencePolarLikelihood(a, i)
		requireGridsEqual(t, "polar likelihood", polar, refPolar)
		requireGridsEqual(t, "polar->XY projection",
			e.polarToXY(polar, i, a.Ref), e.referencePolarToXY(refPolar, i, a.Ref))
		requireSpecEqual(t, "angle spectrum",
			e.angleSpectrum(a.Freqs, a.Values, a.Have, i),
			e.referenceAngleSpectrum(a.Freqs, a.Values, a.Have, i))
		requireSpecEqual(t, "distance spectrum",
			e.distanceSpectrum(a, i), e.referenceDistanceSpectrum(a, i))
	}
}

func TestOptimizedKernelsMatchReference(t *testing.T) {
	d, err := testbed.Paper(41)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	for _, tag := range []geom.Point{geom.Pt(0.8, -1.2), geom.Pt(-1.7, 2.1)} {
		s := d.Sounding(tag)
		a, err := Correct(s)
		if err != nil {
			t.Fatal(err)
		}
		checkKernelParity(t, e, a)
	}
}

func TestOptimizedKernelsMatchReferenceDegraded(t *testing.T) {
	d, err := testbed.Paper(42)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	s := d.Sounding(geom.Pt(-0.4, 1.3)).MaskedCopy()
	// Knock out scattered band rows, one anchor entirely, and a few
	// master rows (which poison the band for every anchor).
	K := s.NumBands()
	for k := 0; k < K; k += 3 {
		s.MaskMissing(k, 1)
	}
	for k := 0; k < K; k++ {
		s.MaskMissing(k, 3)
	}
	s.MaskMissing(5, 0)
	s.MaskMissing(11, 0)
	a, err := Correct(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Have == nil {
		t.Fatal("expected a partial alpha")
	}
	checkKernelParity(t, e, a)
}

// TestPooledCorrectMatchesCorrect pins the pooled corrected-channel path
// (correctInto) to the allocating reference (Correct) bit for bit, on a
// freshly built box and on a recycled one that previously held different
// data.
func TestPooledCorrectMatchesCorrect(t *testing.T) {
	d, err := testbed.Paper(43)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	s1 := d.Sounding(geom.Pt(1.1, 0.3))
	s2 := d.Sounding(geom.Pt(-2.0, -2.4)).MaskedCopy()
	s2.MaskMissing(2, 1)
	s2.MaskMissing(7, 0)

	for _, s := range []*csi.Snapshot{s1, s2, s1} { // third run recycles the box
		want, err := Correct(s)
		if err != nil {
			t.Fatal(err)
		}
		box := e.getAlpha(s.NumBands(), s.NumAnchors(), s.NumAntennas())
		got := e.correctInto(s, 0, box)
		if (got.Have == nil) != (want.Have == nil) {
			t.Fatalf("Have mask mismatch: got nil=%v want nil=%v", got.Have == nil, want.Have == nil)
		}
		for k := range want.Values {
			for i := range want.Values[k] {
				if want.Have != nil && got.Have[k][i] != want.Have[k][i] {
					t.Fatalf("Have[%d][%d]: got %v want %v", k, i, got.Have[k][i], want.Have[k][i])
				}
				for j := range want.Values[k][i] {
					if got.Values[k][i][j] != want.Values[k][i][j] {
						t.Fatalf("alpha[%d][%d][%d]: got %v want %v",
							k, i, j, got.Values[k][i][j], want.Values[k][i][j])
					}
				}
			}
		}
		e.putAlpha(box)
	}
}

// TestLocateMatchesReferencePipeline checks the end-to-end fix path: the
// likelihood surface Locate reports must match the reference pipeline's.
func TestLocateMatchesReferencePipeline(t *testing.T) {
	d, err := testbed.Paper(44)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	s := d.Sounding(geom.Pt(0.2, -2.1))
	res, err := e.Locate(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Correct(s)
	if err != nil {
		t.Fatal(err)
	}
	refCombined, _ := e.LikelihoodReference(a)
	requireGridsEqual(t, "Locate likelihood surface", res.Likelihood, refCombined)
}

func TestEngineStats(t *testing.T) {
	d, err := testbed.Paper(45)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	if st := e.Stats(); st.TableBytes == 0 {
		t.Fatal("projection tables should be accounted before any fix")
	}
	s := d.Sounding(geom.Pt(0.5, 0.5))
	for n := 0; n < 3; n++ {
		if _, err := e.Locate(s); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Fixes != 3 {
		t.Fatalf("Fixes = %d, want 3", st.Fixes)
	}
	if st.PlaneBuilds != 1 {
		t.Fatalf("PlaneBuilds = %d, want 1 (single band plan)", st.PlaneBuilds)
	}
	if st.PoolHits == 0 {
		t.Fatal("steady-state fixes should hit the scratch pools")
	}
	// A second band plan (Fig. 10-style subset sweep) builds one more plane.
	sub := &csi.Snapshot{
		Bands:  s.Bands[:8],
		Freqs:  s.Freqs[:8],
		Tag:    s.Tag[:8],
		Master: s.Master[:8],
	}
	if _, err := e.Locate(sub); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PlaneBuilds != 2 {
		t.Fatalf("PlaneBuilds = %d after second band plan, want 2", st.PlaneBuilds)
	}
}

// TestEngineConcurrentFixes hammers one shared engine from many
// goroutines with distinct snapshots and band plans. Run with -race this
// guards the plane cache, the scratch pools and the tiled fix path.
func TestEngineConcurrentFixes(t *testing.T) {
	d, err := testbed.Paper(46)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	full := d.Sounding(geom.Pt(0.7, 1.4))
	tags := []geom.Point{
		geom.Pt(0.7, 1.4), geom.Pt(-1.2, -0.8), geom.Pt(1.9, -2.2), geom.Pt(-2.1, 2.3),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 4; n++ {
				var s *csi.Snapshot
				switch (w + n) % 3 {
				case 0:
					s = d.Fork(uint64(w*16 + n)).Sounding(tags[(w+n)%len(tags)])
				case 1: // band-subset plan: exercises the plane cache
					cut := 4 + 2*((w+n)%5)
					s = &csi.Snapshot{
						Bands:  full.Bands[:cut],
						Freqs:  full.Freqs[:cut],
						Tag:    full.Tag[:cut],
						Master: full.Master[:cut],
					}
				default: // degraded snapshot
					m := full.MaskedCopy()
					m.MaskMissing((w+n)%m.NumBands(), 1+(w+n)%3)
					s = m
				}
				if _, err := e.Locate(s); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
