package core

import (
	"math"
	"math/cmplx"

	"bloc/internal/dsp"
	"bloc/internal/rfsim"
)

// polarLikelihood evaluates the paper's Eq. 17 for one anchor on the
// engine's (θ, Δd) grid:
//
//	P_i(θ, Δ) = | Σ_j Σ_k α_jk · e^{−ι w_k j l sinθ} · e^{+ι w_k (Δ − D_i)} |
//
// with w_k = 2π f_k / c and D_i the known anchor-to-master distance. The
// angle factor compensates the per-antenna path difference (with this
// repository's geometry, antenna j is closer to a target at positive θ by
// j·l·sinθ, hence the negative sign), and the distance factor compensates
// the relative-distance phase of Eq. 14, so all terms add coherently at
// the true (θ, Δ) of a propagation path.
//
// The computation is factorized: B(θ, k) = Σ_j α_jk·e^{−ι w_k j l sinθ}
// first (cheap), then P(θ, ·) = |E^T B(θ, ·)| with a precomputed steering
// matrix E(k, Δ) — the hot loop is a dense complex matrix product.
//
// The returned grid has W = len(deltas) columns and H = len(thetas) rows.
func (e *Engine) polarLikelihood(a *Alpha, anchor int) *dsp.Grid {
	T, D, K := len(e.thetas), len(e.deltas), a.NumBands()
	J := a.NumAntennas()
	l := e.anchors[anchor].Spacing

	// Angular frequency per band.
	w := make([]float64, K)
	for k := 0; k < K; k++ {
		w[k] = 2 * math.Pi * a.Freqs[k] / rfsim.SpeedOfLight
	}

	// Distance steering matrix E[k][d] = e^{+ι w_k (Δ_d − D_i)}, laid out
	// row-per-band so the inner loop walks contiguous memory.
	E := make([][]complex128, K)
	for k := 0; k < K; k++ {
		row := make([]complex128, D)
		for d, delta := range e.deltas {
			s, c := math.Sincos(w[k] * (delta - e.anchorDist[anchor]))
			row[d] = complex(c, s)
		}
		E[k] = row
	}

	grid := dsp.NewGrid(D, T)
	acc := make([]complex128, D)
	for t, theta := range e.thetas {
		sinT := math.Sin(theta)
		for d := range acc {
			acc[d] = 0
		}
		for k := 0; k < K; k++ {
			if !a.Present(k, anchor) {
				continue // degraded mode: band not measured at this anchor
			}
			// B(θ, k) = Σ_j α_jk · e^{−ι w_k j l sinθ}, built by repeated
			// multiplication with the per-antenna rotation.
			stepS, stepC := math.Sincos(-w[k] * l * sinT)
			step := complex(stepC, stepS)
			rot := complex(1, 0)
			var b complex128
			av := a.Values[k][anchor]
			for j := 0; j < J; j++ {
				b += av[j] * rot
				rot *= step
			}
			//lint:ignore floateq skip beamforming sums that are exactly zero
			if b == 0 {
				continue
			}
			row := E[k]
			for d := 0; d < D; d++ {
				acc[d] += b * row[d]
			}
		}
		rowOut := grid.Data[t*D : (t+1)*D]
		for d := 0; d < D; d++ {
			rowOut[d] = cmplx.Abs(acc[d])
		}
	}
	return grid
}

// angleSpectrum evaluates Eq. 15 for one anchor: the per-band angular
// spectra Pa(θ) = |Σ_j α_jk e^{−ι w_k j l sinθ}|, summed incoherently over
// bands (no cross-band phase is needed for angle, which is why AoA works
// even without offset correction). values may be the corrected α or raw
// measured channels — the per-anchor LO offset is common to all antennas
// and cancels in the magnitude. have is an optional presence mask
// (have[k][anchor]); nil means every band is usable.
func (e *Engine) angleSpectrum(freqs []float64, values [][][]complex128, have [][]bool, anchor int) []float64 {
	T := len(e.thetas)
	K := len(values)
	l := e.anchors[anchor].Spacing
	out := make([]float64, T)
	for t, theta := range e.thetas {
		sinT := math.Sin(theta)
		var sum float64
		for k := 0; k < K; k++ {
			if have != nil && !have[k][anchor] {
				continue
			}
			w := 2 * math.Pi * freqs[k] / rfsim.SpeedOfLight
			stepS, stepC := math.Sincos(-w * l * sinT)
			step := complex(stepC, stepS)
			rot := complex(1, 0)
			var b complex128
			row := values[k][anchor]
			for j := range row {
				b += row[j] * rot
				rot *= step
			}
			sum += cmplx.Abs(b)
		}
		out[t] = sum
	}
	return out
}

// distanceSpectrum evaluates Eq. 16 for one anchor: the relative-distance
// profile |Σ_k α_jk·e^{+ι w_k (Δ − D_i)}| summed incoherently over
// antennas. This is the "hyperbola" component of Fig. 6b.
func (e *Engine) distanceSpectrum(a *Alpha, anchor int) []float64 {
	D := len(e.deltas)
	K := a.NumBands()
	J := a.NumAntennas()
	out := make([]float64, D)
	for d, delta := range e.deltas {
		for j := 0; j < J; j++ {
			var acc complex128
			for k := 0; k < K; k++ {
				if !a.Present(k, anchor) {
					continue
				}
				w := 2 * math.Pi * a.Freqs[k] / rfsim.SpeedOfLight
				s, c := math.Sincos(w * (delta - e.anchorDist[anchor]))
				acc += a.Values[k][anchor][j] * complex(c, s)
			}
			out[d] += cmplx.Abs(acc)
		}
	}
	return out
}
