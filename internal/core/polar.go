package core

import (
	"math"

	"bloc/internal/dsp"
)

// Optimized Eq. 15–17 kernels. The math is identical to the reference
// kernels in reference.go; the difference is that every geometry- and
// band-plan-dependent factor comes from the engine's precomputed planes
// (planes.go), the magnitudes use sqrt(re²+im²) instead of the
// overflow-guarded math.Hypot (the likelihood dynamic range is nowhere
// near the guard thresholds), and the accumulation runs on flat re/im
// float64 planes the compiler turns into tight scalar loops.

// polarLikelihood evaluates the paper's Eq. 17 for one anchor on the
// engine's (θ, Δd) grid, relative to the alpha's elected reference r:
//
//	P_i(θ, Δ) = | Σ_j Σ_k α_jk · e^{−ι w_k j l sinθ} · e^{+ι w_k (Δ − (D_i − D_r))} |
//
// The computation is factorized: B(θ, k) = Σ_j α_jk·e^{−ι w_k j l sinθ}
// first (cheap, using the precomputed per-spacing angle rotors), then the
// relative anchor phase e^{−ι w_k (D_i − D_r)} is folded into B and the
// hot loop is a dense product against the shared base steering planes
// e^{+ι w_k Δ_d}. At r = 0 (D_0 = 0) this is exactly the paper's Eq. 17.
//
// The returned grid has W = len(deltas) columns and H = len(thetas) rows.
func (e *Engine) polarLikelihood(a *Alpha, anchor int) *dsp.Grid {
	T, D := len(e.thetas), len(e.deltas)
	ps := e.planesFor(a.Freqs)
	grid := dsp.NewGrid(D, T)
	acc := e.getFloats(2 * D)
	e.polarFill(ps, e.projections(a.Ref), a, anchor, grid, 0, T, *acc, false)
	e.putFloats(acc)
	return grid
}

// polarFill computes rows [row0, row1) of one anchor's polar likelihood
// into grid. acc is caller-supplied scratch of length ≥ 2·D (re plane
// then im plane). With spanned=true only the Δ span any XY cell actually
// samples (anchorProj.dLo/dHi) is computed per row — cells outside the
// span are never read by the projection and are left untouched, so
// spanned fills require a projection-driven reader.
func (e *Engine) polarFill(ps *planeSet, projs []anchorProj, a *Alpha, anchor int, grid *dsp.Grid, row0, row1 int, acc []float64, spanned bool) {
	D, K := len(e.deltas), a.NumBands()
	J := a.NumAntennas()
	steps := ps.steps[e.spacingIdx[anchor]]
	phase := ps.phase[anchor]
	// Conjugating the reference's rotor e^{−ι w_k D_r} shifts the steering
	// to Δ − (D_i − D_r); at reference 0 it multiplies by exactly 1+0i.
	rphase := ps.phase[a.Ref]
	accRe, accIm := acc[:D], acc[D:2*D]
	pr := &projs[anchor]

	for t := row0; t < row1; t++ {
		lo, hi := 0, D
		if spanned {
			lo, hi = int(pr.dLo[t]), int(pr.dHi[t])
			if lo >= hi {
				continue // no XY cell samples this θ row
			}
		}
		are, aim := accRe[lo:hi], accIm[lo:hi]
		for d := range are {
			are[d] = 0
			aim[d] = 0
		}
		srow := steps[t*K : t*K+K]
		for k := 0; k < K; k++ {
			if !a.Present(k, anchor) {
				continue // degraded mode: band not measured at this anchor
			}
			// B(θ, k) = Σ_j α_jk · e^{−ι w_k j l sinθ}, built by repeated
			// multiplication with the precomputed per-antenna rotation.
			step := srow[k]
			rot := complex(1, 0)
			var b complex128
			av := a.Values[k][anchor]
			for j := 0; j < J; j++ {
				b += av[j] * rot
				rot *= step
			}
			//lint:ignore floateq skip beamforming sums that are exactly zero
			if b == 0 {
				continue
			}
			b *= phase[k] * conj(rphase[k]) // fold e^{−ι w_k (D_i − D_r)} once per (θ, k)
			bRe, bIm := real(b), imag(b)
			row := k * D
			bre, bim := ps.baseRe[row+lo:row+hi], ps.baseIm[row+lo:row+hi]
			for d := range bre {
				are[d] += bRe*bre[d] - bIm*bim[d]
				aim[d] += bRe*bim[d] + bIm*bre[d]
			}
		}
		rowOut := grid.Data[t*D+lo : t*D+hi]
		for d := range rowOut {
			rowOut[d] = math.Sqrt(are[d]*are[d] + aim[d]*aim[d])
		}
	}
}

// angleSpectrum evaluates Eq. 15 for one anchor: the per-band angular
// spectra Pa(θ) = |Σ_j α_jk e^{−ι w_k j l sinθ}|, summed incoherently over
// bands (no cross-band phase is needed for angle, which is why AoA works
// even without offset correction). values may be the corrected α or raw
// measured channels — the per-anchor LO offset is common to all antennas
// and cancels in the magnitude. have is an optional presence mask
// (have[k][anchor]); nil means every band is usable.
//
// The per-band w_k and the (θ, k) rotors come from the cached steering
// planes instead of being recomputed T× per band per call.
func (e *Engine) angleSpectrum(freqs []float64, values [][][]complex128, have [][]bool, anchor int) []float64 {
	T := len(e.thetas)
	K := len(values)
	ps := e.planesFor(freqs)
	steps := ps.steps[e.spacingIdx[anchor]]
	out := make([]float64, T)
	for t := 0; t < T; t++ {
		var sum float64
		srow := steps[t*K : t*K+K]
		for k := 0; k < K; k++ {
			if have != nil && !have[k][anchor] {
				continue
			}
			step := srow[k]
			rot := complex(1, 0)
			var b complex128
			row := values[k][anchor]
			for j := range row {
				b += row[j] * rot
				rot *= step
			}
			bRe, bIm := real(b), imag(b)
			sum += math.Sqrt(bRe*bRe + bIm*bIm)
		}
		out[t] = sum
	}
	return out
}

// distanceSpectrum evaluates Eq. 16 for one anchor: the relative-distance
// profile |Σ_k α_jk·e^{+ι w_k (Δ − D_i)}| summed incoherently over
// antennas. This is the "hyperbola" component of Fig. 6b. The steering
// factors come from the shared base planes with the anchor phase folded
// into each band's α, turning the per-(Δ, j, k) trigonometry of the
// reference into K passes of scalar multiply-adds per antenna.
func (e *Engine) distanceSpectrum(a *Alpha, anchor int) []float64 {
	D := len(e.deltas)
	K := a.NumBands()
	J := a.NumAntennas()
	ps := e.planesFor(a.Freqs)
	phase := ps.phase[anchor]
	rphase := ps.phase[a.Ref]
	out := make([]float64, D)
	acc := e.getFloats(2 * D)
	accRe, accIm := (*acc)[:D], (*acc)[D:2*D]
	for j := 0; j < J; j++ {
		for d := range accRe {
			accRe[d] = 0
			accIm[d] = 0
		}
		for k := 0; k < K; k++ {
			if !a.Present(k, anchor) {
				continue
			}
			v := a.Values[k][anchor][j] * phase[k] * conj(rphase[k])
			vRe, vIm := real(v), imag(v)
			row := k * D
			bre, bim := ps.baseRe[row:row+D], ps.baseIm[row:row+D]
			for d := range bre {
				accRe[d] += vRe*bre[d] - vIm*bim[d]
				accIm[d] += vRe*bim[d] + vIm*bre[d]
			}
		}
		for d := range out {
			out[d] += math.Sqrt(accRe[d]*accRe[d] + accIm[d]*accIm[d])
		}
	}
	e.putFloats(acc)
	return out
}
