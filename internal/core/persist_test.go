package core

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestCalibrationExportRestoreBitIdentical(t *testing.T) {
	cal := &Calibration{Rotors: [][]complex128{
		{1, cmplx.Rect(1, 0.21), cmplx.Rect(1, -1.3), cmplx.Rect(1, 2.9)},
		{1, cmplx.Rect(1, -0.02), cmplx.Rect(1, 0.5), cmplx.Rect(1, -2.2)},
		{1, 1, 1, 1},
	}}
	rotors := cal.ExportRotors()
	// Export must be a deep copy.
	rotors[0][1] *= cmplx.Rect(1, 0.1)
	if math.Float64bits(real(cal.Rotors[0][1])) == math.Float64bits(real(rotors[0][1])) {
		t.Fatal("ExportRotors shares memory with the calibration")
	}

	restored, err := RestoreCalibration(cal.ExportRotors())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cal.Rotors {
		for j := range cal.Rotors[i] {
			a, b := cal.Rotors[i][j], restored.Rotors[i][j]
			if math.Float64bits(real(a)) != math.Float64bits(real(b)) ||
				math.Float64bits(imag(a)) != math.Float64bits(imag(b)) {
				t.Fatalf("rotor [%d][%d] changed: %v -> %v", i, j, a, b)
			}
		}
	}
	if math.Abs(restored.MaxErrorDeg()-cal.MaxErrorDeg()) > 0 {
		t.Fatal("restored calibration reports a different error magnitude")
	}
}

func TestRestoreCalibrationRejections(t *testing.T) {
	cases := []struct {
		name   string
		rotors [][]complex128
	}{
		{"empty", nil},
		{"anchor without rotors", [][]complex128{{1, 1}, {}}},
		{"antenna 0 not unity", [][]complex128{{cmplx.Rect(1, 0.1), 1}}},
		{"non-finite rotor", [][]complex128{{1, complex(math.NaN(), 0)}}},
		{"off unit circle", [][]complex128{{1, complex(0.5, 0)}}},
		{"zero rotor", [][]complex128{{1, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RestoreCalibration(tc.rotors); err == nil {
				t.Fatal("invalid rotors restored without error")
			}
		})
	}
}
