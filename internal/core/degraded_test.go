package core

import (
	"strings"
	"testing"

	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// Degraded-mode tests: the fault-tolerant acquisition plane completes
// rounds from partial snapshots, so the estimator must localize from a
// masked subset of anchor/band rows without corruption or crashes.

func degradedSetup(t *testing.T, seed uint64) (*testbed.Deployment, *Engine) {
	t.Helper()
	dep, err := testbed.Paper(seed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(dep.Anchors, DefaultConfig(dep.Env.Room))
	if err != nil {
		t.Fatal(err)
	}
	return dep, eng
}

func TestLocateWithSilencedAnchor(t *testing.T) {
	dep, eng := degradedSetup(t, 61)
	tag := geom.Pt(0.8, -0.5)
	snap := dep.Sounding(tag)

	full, err := eng.Locate(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Silence one non-master anchor entirely.
	masked := snap.MaskedCopy()
	for k := range masked.Bands {
		masked.MaskMissing(k, 3)
	}
	res, err := eng.Locate(masked)
	if err != nil {
		t.Fatalf("degraded locate failed: %v", err)
	}
	// Three anchors are plenty: error should stay room-scale accurate
	// and in the same neighborhood as the full fix.
	if res.Estimate.Dist(tag) > 2.0 {
		t.Errorf("3-anchor estimate %v too far from tag %v (full: %v)",
			res.Estimate, tag, full.Estimate)
	}
}

func TestLocateWithMissingBands(t *testing.T) {
	dep, eng := degradedSetup(t, 62)
	tag := geom.Pt(-0.6, 0.7)
	snap := dep.Sounding(tag)
	masked := snap.MaskedCopy()
	// Drop ~20% of bands, rotating across anchors — including master
	// rows, which invalidate the whole band for everyone.
	for k := range masked.Bands {
		if k%5 == 0 {
			masked.MaskMissing(k, k/5%masked.NumAnchors())
		}
	}
	res, err := eng.Locate(masked)
	if err != nil {
		t.Fatalf("locate with missing bands failed: %v", err)
	}
	if res.Estimate.Dist(tag) > 2.0 {
		t.Errorf("band-degraded estimate %v too far from tag %v", res.Estimate, tag)
	}
}

func TestLocateRejectsBelowTwoAnchors(t *testing.T) {
	dep, eng := degradedSetup(t, 63)
	snap := dep.Sounding(geom.Pt(0, 0))
	masked := snap.MaskedCopy()
	for k := range masked.Bands {
		for i := 1; i < masked.NumAnchors(); i++ {
			masked.MaskMissing(k, i)
		}
	}
	if _, err := eng.Locate(masked); err == nil {
		t.Fatal("locate with a single surviving anchor should fail")
	} else if !strings.Contains(err.Error(), "anchors usable") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLocateRejectsMissingMaster(t *testing.T) {
	dep, eng := degradedSetup(t, 64)
	snap := dep.Sounding(geom.Pt(0, 0))
	masked := snap.MaskedCopy()
	// No master rows at all → no ĥ00 on any band → no usable α anywhere.
	for k := range masked.Bands {
		masked.MaskMissing(k, 0)
	}
	if _, err := eng.Locate(masked); err == nil {
		t.Fatal("locate without any master row should fail")
	}
}

func TestCorrectMaskPropagation(t *testing.T) {
	dep, _ := degradedSetup(t, 65)
	snap := dep.Sounding(geom.Pt(0.3, 0.3))
	masked := snap.MaskedCopy()
	masked.MaskMissing(4, 2) // anchor 2 misses band 4
	masked.MaskMissing(7, 0) // master misses band 7

	a, err := Correct(masked)
	if err != nil {
		t.Fatal(err)
	}
	if a.Present(4, 2) {
		t.Error("alpha should be missing where the anchor row is missing")
	}
	if a.Present(4, 1) != true {
		t.Error("other anchors keep band 4")
	}
	for i := 0; i < a.NumAnchors(); i++ {
		if a.Present(7, i) {
			t.Errorf("band 7 has no master row; anchor %d must be masked", i)
		}
	}
	if got := a.PresentBands(2); got != len(masked.Bands)-2 {
		t.Errorf("anchor 2 usable bands = %d, want %d", got, len(masked.Bands)-2)
	}
	if got := len(a.PresentAnchors()); got != 4 {
		t.Errorf("present anchors = %d, want 4", got)
	}

	// A complete snapshot keeps the nil fast path.
	af, err := Correct(snap)
	if err != nil {
		t.Fatal(err)
	}
	if af.Have != nil {
		t.Error("complete snapshot should produce a nil alpha mask")
	}
}

func TestBaselinesDegrade(t *testing.T) {
	dep, eng := degradedSetup(t, 66)
	tag := geom.Pt(0.5, 0.2)
	snap := dep.Sounding(tag)
	masked := snap.MaskedCopy()
	for k := range masked.Bands {
		masked.MaskMissing(k, 1)
	}
	if _, err := eng.LocateAoA(masked); err != nil {
		t.Errorf("AoA with 3 anchors: %v", err)
	}
	if _, err := eng.LocateAoASoft(masked); err != nil {
		t.Errorf("AoA-soft with 3 anchors: %v", err)
	}
	if _, err := eng.LocateRSSI(masked); err != nil {
		t.Errorf("RSSI with 3 anchors: %v", err)
	}
	if _, err := eng.LocateMUSIC(masked); err != nil {
		t.Errorf("MUSIC with 3 anchors: %v", err)
	}
	// RSSI needs 3 ranges: with only 2 anchors left it must refuse.
	for k := range masked.Bands {
		masked.MaskMissing(k, 2)
	}
	if _, err := eng.LocateRSSI(masked); err == nil {
		t.Error("RSSI with 2 anchors should fail")
	}
}
