// Package core implements the paper's primary contribution: turning
// phase-garbled multi-band BLE CSI into a location estimate.
//
// The pipeline follows §5 exactly:
//
//  1. Correct: cancel per-retune LO phase offsets with the collaborative
//     conjugate product α_ij = ĥ_ij·Ĥ*_i0·ĥ*_00 (Eq. 10).
//  2. Per-anchor joint likelihood over angle and relative distance
//     P_i(θ, Δd) (Eq. 17), computed on a polar grid with precomputed
//     steering tables.
//  3. Map each polar likelihood onto the room's XY grid and sum across
//     anchors (§5.3).
//  4. Find likelihood peaks and score each with
//     s_x = p_x·e^{bH − aΣ_i d_i} (Eq. 18), where H is the spatial
//     negentropy of the peak's neighborhood; the best score is the
//     location estimate (§5.4).
//
// Baselines from the paper's evaluation — AoA-combining (§8.2), the
// shortest-distance-only selector (§8.7) and RSSI trilateration (§9.2
// context) — live alongside the main estimator.
package core

import (
	"fmt"
	"math/cmplx"

	"bloc/internal/csi"
)

// Alpha holds the corrected channels α^f_ij of Eq. 10 for one snapshot:
// Values[k][i][j] is the offset-free product for band k, anchor i,
// antenna j. The master anchor's entries are ĥ_0j·ĥ*_00 (its offsets
// cancel pairwise; Eq. 14 with d^{i0}_{00} = 0).
type Alpha struct {
	Freqs  []float64
	Values [][][]complex128

	// Have[k][i] marks which corrected rows are usable. It is non-nil
	// only for partial snapshots (degraded mode): an α row exists iff the
	// snapshot carried both anchor i's row for band k AND the master's
	// own row for that band (the correction multiplies by ĥ*_00). Rows
	// with Have[k][i] == false are zero and must be skipped by the
	// likelihood sums.
	Have [][]bool
}

// Correct computes the corrected channels from a snapshot (Eq. 10):
//
//	α^f_ij = ĥ^f_ij · (Ĥ^f_i0)* · (ĥ^f_00)*
//
// The snapshot's Master[k][0] is 1 by construction, which makes the same
// formula correct for the master anchor itself.
//
// Partial snapshots (non-nil Have mask) are supported: bands whose master
// row is missing yield no usable α for any anchor (there is no ĥ_00 to
// correct against), and anchors missing a band contribute no α on that
// band. Because the likelihoods of Eq. 17 sum per anchor and per band,
// skipping missing rows turns the estimate into a masked sum rather than
// corrupting it.
func Correct(s *csi.Snapshot) (*Alpha, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid snapshot: %w", err)
	}
	K, I, J := s.NumBands(), s.NumAnchors(), s.NumAntennas()
	a := &Alpha{
		Freqs:  s.Freqs,
		Values: make([][][]complex128, K),
	}
	if s.Have != nil {
		a.Have = make([][]bool, K)
	}
	for k := 0; k < K; k++ {
		a.Values[k] = make([][]complex128, I)
		if a.Have != nil {
			a.Have[k] = make([]bool, I)
		}
		masterOK := s.Present(k, 0)
		h00 := cmplx.Conj(s.Tag[k][0][0])
		for i := 0; i < I; i++ {
			row := make([]complex128, J)
			ok := masterOK && s.Present(k, i)
			if ok {
				mi := cmplx.Conj(s.Master[k][i]) * h00
				for j := 0; j < J; j++ {
					row[j] = s.Tag[k][i][j] * mi
				}
			}
			if a.Have != nil {
				a.Have[k][i] = ok
			}
			a.Values[k][i] = row
		}
	}
	return a, nil
}

// Present reports whether the corrected row for (band k, anchor i) is
// usable. A nil mask means every row is.
func (a *Alpha) Present(k, i int) bool {
	return a.Have == nil || a.Have[k][i]
}

// PresentBands returns the number of usable bands for anchor i.
func (a *Alpha) PresentBands(i int) int {
	if a.Have == nil {
		return a.NumBands()
	}
	n := 0
	for k := range a.Have {
		if a.Have[k][i] {
			n++
		}
	}
	return n
}

// PresentAnchors returns the indices of anchors with at least one usable
// band.
func (a *Alpha) PresentAnchors() []int {
	var out []int
	for i := 0; i < a.NumAnchors(); i++ {
		if a.PresentBands(i) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// NumBands returns K.
func (a *Alpha) NumBands() int { return len(a.Values) }

// NumAnchors returns I.
func (a *Alpha) NumAnchors() int {
	if len(a.Values) == 0 {
		return 0
	}
	return len(a.Values[0])
}

// NumAntennas returns J.
func (a *Alpha) NumAntennas() int {
	if len(a.Values) == 0 || len(a.Values[0]) == 0 {
		return 0
	}
	return len(a.Values[0][0])
}
