// Package core implements the paper's primary contribution: turning
// phase-garbled multi-band BLE CSI into a location estimate.
//
// The pipeline follows §5 exactly:
//
//  1. Correct: cancel per-retune LO phase offsets with the collaborative
//     conjugate product α_ij = ĥ_ij·Ĥ*_i0·ĥ*_00 (Eq. 10).
//  2. Per-anchor joint likelihood over angle and relative distance
//     P_i(θ, Δd) (Eq. 17), computed on a polar grid with precomputed
//     steering tables.
//  3. Map each polar likelihood onto the room's XY grid and sum across
//     anchors (§5.3).
//  4. Find likelihood peaks and score each with
//     s_x = p_x·e^{bH − aΣ_i d_i} (Eq. 18), where H is the spatial
//     negentropy of the peak's neighborhood; the best score is the
//     location estimate (§5.4).
//
// Baselines from the paper's evaluation — AoA-combining (§8.2), the
// shortest-distance-only selector (§8.7) and RSSI trilateration (§9.2
// context) — live alongside the main estimator.
package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"bloc/internal/csi"
)

// refToneFloor is the denormal guard on reference tones: conjugating
// against a zero or denormal ĥ_r0 / Ĥ_r0 turns the α products into Inf
// (1/denormal overflows downstream magnitude normalization), and a single
// Inf propagates into the grid max and poisons the argmax. Rows built on
// tones below this floor are masked instead.
const refToneFloor = 1e-150

// finiteC reports whether both parts of z are finite (no NaN/Inf).
func finiteC(z complex128) bool {
	re, im := real(z), imag(z)
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}

// Alpha holds the corrected channels α^f_ij of Eq. 10 for one snapshot:
// Values[k][i][j] is the offset-free product for band k, anchor i,
// antenna j, conjugated against the elected reference anchor Ref. The
// reference anchor's own entries are ĥ_rj·ĥ*_r0 (its offsets cancel
// pairwise; Eq. 14 with d^{ir}_{00} = 0).
type Alpha struct {
	Freqs  []float64
	Values [][][]complex128

	// Ref is the reference anchor index the conjugate product was taken
	// against. Ref 0 reproduces Eq. 10 verbatim; see CorrectRef for the
	// relaxed derivation.
	Ref int

	// Have[k][i] marks which corrected rows are usable. It is non-nil
	// for partial snapshots (degraded mode) and whenever the finite
	// guard masked a corrupt row: an α row exists iff the snapshot
	// carried both anchor i's row for band k AND the reference's own row
	// for that band (the correction multiplies by ĥ*_r0), and the
	// product stayed finite. Rows with Have[k][i] == false are zero and
	// must be skipped by the likelihood sums.
	Have [][]bool
}

// Correct computes the corrected channels against reference anchor 0,
// the paper's hard-wired master (Eq. 10). See CorrectRef.
func Correct(s *csi.Snapshot) (*Alpha, error) {
	return CorrectRef(s, 0)
}

// CorrectRef computes the corrected channels from a snapshot against an
// elected reference anchor r:
//
//	α^{f,r}_ij = ĥ^f_ij · (Ĥ^f_i0)* · Ĥ^f_r0 · (ĥ^f_r0)*
//
// This relaxes Eq. 10's fixed master index. Writing each measurement's
// LO offsets out (tag offset φT, per-anchor receive offsets φRi, with
// the inter-anchor sounding still transmitted by anchor 0):
//
//	∠ĥ_ij  += φT  − φRi      ∠Ĥ_i0 += φR0 − φRi
//	∠Ĥ_r0  += φR0 − φRr      ∠ĥ_r0 += φT  − φRr
//
// so the product's offsets telescope to zero for every i — including
// i = 0 and i = r — using only measurements the anchors already report.
// At r = 0 the snapshot's Master[k][0] is 1 by construction and the
// formula reduces exactly to Eq. 10.
//
// Partial snapshots (non-nil Have mask) are supported: bands whose
// reference row is missing yield no usable α for any anchor (there is no
// ĥ_r0 to correct against), and anchors missing a band contribute no α
// on that band. Because the likelihoods of Eq. 17 sum per anchor and per
// band, skipping missing rows turns the estimate into a masked sum
// rather than corrupting it. Rows whose product is non-finite, or whose
// reference tones are zero/denormal, are masked the same way.
func CorrectRef(s *csi.Snapshot, ref int) (*Alpha, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid snapshot: %w", err)
	}
	K, I, J := s.NumBands(), s.NumAnchors(), s.NumAntennas()
	if ref < 0 || ref >= I {
		return nil, fmt.Errorf("core: reference anchor %d out of range [0,%d)", ref, I)
	}
	a := &Alpha{
		Freqs:  s.Freqs,
		Values: make([][][]complex128, K),
		Ref:    ref,
		Have:   make([][]bool, K),
	}
	anyMasked := false
	for k := 0; k < K; k++ {
		a.Values[k] = make([][]complex128, I)
		a.Have[k] = make([]bool, I)
		refOK, mr := refFactor(s, k, ref)
		for i := 0; i < I; i++ {
			row := make([]complex128, J)
			ok := refOK && s.Present(k, i)
			if ok {
				ok = alphaRow(row, s.Tag[k][i], s.Master[k][i], mr)
			}
			a.Have[k][i] = ok
			if !ok {
				anyMasked = true
			}
			a.Values[k][i] = row
		}
	}
	if s.Have == nil && !anyMasked {
		a.Have = nil
	}
	return a, nil
}

// refFactor computes the per-band reference term Ĥ_r0·ĥ*_r0 and whether
// it is usable: the reference's row must be present and both tones must
// be finite and above the denormal floor.
func refFactor(s *csi.Snapshot, k, ref int) (bool, complex128) {
	if !s.Present(k, ref) {
		return false, 0
	}
	hr0 := s.Tag[k][ref][0]
	Hr0 := s.Master[k][ref]
	if !finiteC(hr0) || !finiteC(Hr0) ||
		cmplx.Abs(hr0) < refToneFloor || cmplx.Abs(Hr0) < refToneFloor {
		return false, 0
	}
	return true, Hr0 * conj(hr0)
}

// alphaRow fills one corrected row α_ij = ĥ_ij·Ĥ*_i0·mr and reports
// whether every product stayed finite; a non-finite row is zeroed so the
// caller can mask it.
func alphaRow(row []complex128, tag []complex128, Hi0 complex128, mr complex128) bool {
	mi := conj(Hi0) * mr
	if !finiteC(mi) {
		clear(row)
		return false
	}
	for j := range row {
		v := tag[j] * mi
		if !finiteC(v) {
			clear(row)
			return false
		}
		row[j] = v
	}
	return true
}

// Present reports whether the corrected row for (band k, anchor i) is
// usable. A nil mask means every row is.
func (a *Alpha) Present(k, i int) bool {
	return a.Have == nil || a.Have[k][i]
}

// PresentBands returns the number of usable bands for anchor i.
func (a *Alpha) PresentBands(i int) int {
	if a.Have == nil {
		return a.NumBands()
	}
	n := 0
	for k := range a.Have {
		if a.Have[k][i] {
			n++
		}
	}
	return n
}

// PresentAnchors returns the indices of anchors with at least one usable
// band.
func (a *Alpha) PresentAnchors() []int {
	var out []int
	for i := 0; i < a.NumAnchors(); i++ {
		if a.PresentBands(i) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// NumBands returns K.
func (a *Alpha) NumBands() int { return len(a.Values) }

// NumAnchors returns I.
func (a *Alpha) NumAnchors() int {
	if len(a.Values) == 0 {
		return 0
	}
	return len(a.Values[0])
}

// NumAntennas returns J.
func (a *Alpha) NumAntennas() int {
	if len(a.Values) == 0 || len(a.Values[0]) == 0 {
		return 0
	}
	return len(a.Values[0][0])
}
