package core

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Calibration export/import for the durable state plane (DESIGN.md §11):
// the calibration is the single most expensive piece of server state to
// rebuild — re-estimating it costs a full round of reference soundings
// per anchor pair — so a restarted server restores it from the last
// checkpoint instead, subject to the staleness TTL the embedding process
// enforces.

// rotorMagTol bounds how far a restored rotor's magnitude may sit from
// the unit circle. EstimateCalibration constructs rotors with cmplx.Rect
// (magnitude exactly 1); anything materially off-unit marks a snapshot
// written by a different (buggy or hostile) producer.
const rotorMagTol = 1e-6

// ExportRotors returns a deep copy of the calibration rotors in the
// plain [][]complex128 shape the durable snapshot stores.
func (c *Calibration) ExportRotors() [][]complex128 {
	out := make([][]complex128, len(c.Rotors))
	for i, r := range c.Rotors {
		out[i] = append([]complex128(nil), r...)
	}
	return out
}

// RestoreCalibration validates restored rotors and rebuilds a
// Calibration. It enforces the invariants EstimateCalibration guarantees
// by construction: at least one anchor, every rotor finite and on the
// unit circle (within rotorMagTol), and antenna 0's rotor exactly 1 —
// restoring must reproduce the pre-crash calibration bit-for-bit or not
// at all.
func RestoreCalibration(rotors [][]complex128) (*Calibration, error) {
	if len(rotors) == 0 {
		return nil, fmt.Errorf("core: restore: no calibration rotors")
	}
	out := make([][]complex128, len(rotors))
	for i, anchor := range rotors {
		if len(anchor) == 0 {
			return nil, fmt.Errorf("core: restore: anchor %d has no rotors", i)
		}
		// Bit-exact check: EstimateCalibration assigns the literal 1, and
		// a restored calibration must be indistinguishable from the one
		// that was saved.
		if math.Float64bits(real(anchor[0])) != math.Float64bits(1) ||
			math.Float64bits(imag(anchor[0])) != 0 {
			return nil, fmt.Errorf("core: restore: anchor %d antenna 0 rotor %v, want exactly 1", i, anchor[0])
		}
		for j, r := range anchor {
			if !finiteC(r) {
				return nil, fmt.Errorf("core: restore: non-finite rotor anchor %d antenna %d", i, j)
			}
			if mag := cmplx.Abs(r); mag < 1-rotorMagTol || mag > 1+rotorMagTol {
				return nil, fmt.Errorf("core: restore: rotor anchor %d antenna %d off the unit circle (|r| = %v)", i, j, mag)
			}
		}
		out[i] = append([]complex128(nil), anchor...)
	}
	return &Calibration{Rotors: out}, nil
}
