package core

import (
	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// Tile sizes for the parallel fix path: θ rows per polar task and packed
// projection cells per projection task. Small enough that (anchors ×
// tiles) comfortably exceeds any realistic GOMAXPROCS, large enough that
// per-task overhead is noise.
const (
	polarRowTile = 16
	projCellTile = 4096
	sumRowTile   = 64
)

// polarToXY resamples one anchor's polar likelihood P_i(θ, Δ) onto the
// engine's XY grid for reference anchor ref: every cell center p maps to
// the anchor-relative coordinates θ_i(p) (angle from the array broadside)
// and Δ_i(p) = |p − ant_i0| − |p − ant_r0| (relative distance, §5.3), and
// the polar grid is sampled bilinearly there. The mapping is precomputed:
// the packed projection table supplies each in-range cell's source
// indices and weights, so no per-cell trigonometry runs here.
func (e *Engine) polarToXY(polar *dsp.Grid, anchor, ref int) *dsp.Grid {
	out := dsp.NewGrid(e.nx, e.ny)
	pr := &e.projections(ref)[anchor]
	e.projectPolar(polar, pr, out, 0, len(pr.cells))
	return out
}

// projectPolar applies projection-table entries [lo, hi) of one anchor to
// out and returns the maximum projected value of the slice (for the
// deferred per-anchor normalization).
func (e *Engine) projectPolar(polar *dsp.Grid, pr *anchorProj, out *dsp.Grid, lo, hi int) float64 {
	cells := pr.cells[lo:hi]
	pd := polar.Data
	od := out.Data
	var max float64
	for i := range cells {
		c := &cells[i]
		v := pd[c.i00]*c.w00 + pd[c.i10]*c.w10 + pd[c.i01]*c.w01 + pd[c.i11]*c.w11
		od[c.xy] = v
		if v > max {
			max = v
		}
	}
	return max
}

// Likelihood computes the combined XY likelihood of Eq. 17 summed over all
// anchors (§5.3), optionally normalizing each anchor's map to unit maximum
// first. The per-anchor maps are also returned for inspection (Fig. 6c,
// Fig. 8c).
//
// The work is tiled (anchors × θ tiles, then anchors × projection tiles)
// across GOMAXPROCS workers, with every intermediate buffer drawn from
// the engine's pools; only polar cells some XY cell actually samples are
// computed. In degraded mode (partial alpha), anchors with no usable band
// are skipped entirely — their perAnchor entry is nil and they contribute
// nothing to the combined sum.
func (e *Engine) Likelihood(a *Alpha) (combined *dsp.Grid, perAnchor []*dsp.Grid) {
	perAnchor = make([]*dsp.Grid, a.NumAnchors())
	combined = e.likelihood(a, perAnchor)
	return combined, perAnchor
}

// likelihoodCombined is the fix-path variant: per-anchor maps stay in the
// pools and only the combined grid (owned by the caller) is produced.
func (e *Engine) likelihoodCombined(a *Alpha) *dsp.Grid {
	return e.likelihood(a, nil)
}

// likelihood runs the tiled fix pipeline. When perAnchor is non-nil the
// per-anchor XY grids are handed to it (ownership transfers to the
// caller); otherwise they are recycled.
func (e *Engine) likelihood(a *Alpha, perAnchor []*dsp.Grid) *dsp.Grid {
	ps := e.planesFor(a.Freqs)
	projs := e.projections(a.Ref)
	I := a.NumAnchors()
	T := len(e.thetas)
	combined := dsp.NewGrid(e.nx, e.ny)

	activeBuf := e.getInts(I)
	active := *activeBuf
	for i := 0; i < I; i++ {
		if a.PresentBands(i) > 0 {
			active = append(active, i)
		}
	}
	nA := len(active)
	if nA == 0 {
		e.putInts(activeBuf)
		return combined
	}

	run := e.getRun()
	run.polars = growGrids(run.polars, nA)
	run.xys = growGrids(run.xys, nA)
	run.inv = growFloats(run.inv, nA)
	run.off = growInts(run.off, nA)
	for ai := 0; ai < nA; ai++ {
		run.polars[ai] = e.polarPool.Get()
		run.xys[ai] = e.xyPool.Get()
	}

	// Round 1: polar likelihood, tiled over (anchor, θ rows).
	polarTiles := (T + polarRowTile - 1) / polarRowTile
	parallelFor(nA*polarTiles, func(task int) {
		ai := task / polarTiles
		row0 := (task % polarTiles) * polarRowTile
		row1 := row0 + polarRowTile
		if row1 > T {
			row1 = T
		}
		acc := e.getFloats(2 * len(e.deltas))
		e.polarFill(ps, projs, a, active[ai], run.polars[ai], row0, row1, *acc, true)
		e.putFloats(acc)
	})

	// Round 2: polar → XY projection, tiled over (anchor, packed cells),
	// collecting per-tile partial maxima for the normalization.
	totalTiles := 0
	for ai, i := range active {
		run.off[ai] = totalTiles
		totalTiles += (len(projs[i].cells) + projCellTile - 1) / projCellTile
	}
	run.maxima = growFloats(run.maxima, totalTiles)
	parallelFor(totalTiles, func(task int) {
		ai := nA - 1
		for j := 1; j < nA; j++ {
			if task < run.off[j] {
				ai = j - 1
				break
			}
		}
		pr := &projs[active[ai]]
		lo := (task - run.off[ai]) * projCellTile
		hi := lo + projCellTile
		if hi > len(pr.cells) {
			hi = len(pr.cells)
		}
		run.maxima[task] = e.projectPolar(run.polars[ai], pr, run.xys[ai], lo, hi)
	})

	// Per-anchor normalization factors (Normalize leaves all-zero maps
	// unchanged, hence the max > 0 guard).
	for ai := 0; ai < nA; ai++ {
		end := totalTiles
		if ai+1 < nA {
			end = run.off[ai+1]
		}
		var m float64
		for _, v := range run.maxima[run.off[ai]:end] {
			if v > m {
				m = v
			}
		}
		run.inv[ai] = 1
		if e.cfg.NormalizePerAnchor && m > 0 {
			run.inv[ai] = 1 / m
		}
	}

	// Round 3: scaled sum into the combined grid, tiled over XY rows.
	sumTiles := (e.ny + sumRowTile - 1) / sumRowTile
	parallelFor(sumTiles, func(task int) {
		lo := task * sumRowTile * e.nx
		hi := lo + sumRowTile*e.nx
		if hi > len(combined.Data) {
			hi = len(combined.Data)
		}
		cd := combined.Data[lo:hi]
		for ai := 0; ai < nA; ai++ {
			inv := run.inv[ai]
			xd := run.xys[ai].Data[lo:hi]
			for c := range cd {
				cd[c] += inv * xd[c]
			}
		}
	})

	for ai := 0; ai < nA; ai++ {
		e.polarPool.Put(run.polars[ai])
		if perAnchor != nil {
			// Hand the (pool-zeroed, fully painted) grid to the caller,
			// applying the normalization Likelihood's contract promises.
			xy := run.xys[ai]
			if e.cfg.NormalizePerAnchor {
				scaleGrid(xy, run.inv[ai])
			}
			perAnchor[active[ai]] = xy
		} else {
			e.xyPool.Put(run.xys[ai])
		}
		run.polars[ai], run.xys[ai] = nil, nil
	}
	e.putRun(run)
	e.putInts(activeBuf)
	return combined
}

// scaleGrid multiplies every cell by f (f = 1 is an exact no-op in IEEE
// arithmetic, so no special case is needed).
func scaleGrid(g *dsp.Grid, f float64) {
	for i := range g.Data {
		g.Data[i] *= f
	}
}

// AngleLikelihoodXY maps Eq. 15 over the XY plane for one anchor: each
// cell gets the angular spectrum value of its direction (Fig. 6a).
func (e *Engine) AngleLikelihoodXY(a *Alpha, anchor int) *dsp.Grid {
	spec := e.angleSpectrum(a.Freqs, a.Values, a.Have, anchor)
	return e.angleSpectrumToXY(spec, anchor, a.Ref)
}

// angleSpectrumToXY paints a θ spectrum over the XY grid through the
// precomputed θ-only projection table (the table's angle entries do not
// depend on the reference; ref only selects the set they live in).
func (e *Engine) angleSpectrumToXY(spec []float64, anchor, ref int) *dsp.Grid {
	out := dsp.NewGrid(e.nx, e.ny)
	od := out.Data
	for _, c := range e.projections(ref)[anchor].angle {
		od[c.xy] = spec[c.i0]*(1-c.fr) + spec[c.i1]*c.fr
	}
	return out
}

// DistanceLikelihoodXY maps Eq. 16 over the XY plane for one anchor: each
// cell gets the relative-distance profile value of its hyperbola
// coordinate (Fig. 6b), through the precomputed Δ-only projection table
// of the alpha's reference.
func (e *Engine) DistanceLikelihoodXY(a *Alpha, anchor int) *dsp.Grid {
	spec := e.distanceSpectrum(a, anchor)
	out := dsp.NewGrid(e.nx, e.ny)
	od := out.Data
	for _, c := range e.projections(a.Ref)[anchor].dist {
		od[c.xy] = spec[c.i0]*(1-c.fr) + spec[c.i1]*c.fr
	}
	return out
}

// GridPoint converts a grid peak to room coordinates.
func (e *Engine) GridPoint(p dsp.Peak) geom.Point { return e.CellCenter(p.IX, p.IY) }
