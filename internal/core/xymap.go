package core

import (
	"sync"

	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// polarToXY resamples one anchor's polar likelihood P_i(θ, Δ) onto the
// engine's XY grid: every cell center p maps to the anchor-relative
// coordinates θ_i(p) (angle from the array broadside) and
// Δ_i(p) = |p − ant_i0| − |p − ant_00| (relative distance, §5.3), and the
// polar grid is sampled bilinearly there.
func (e *Engine) polarToXY(polar *dsp.Grid, anchor int) *dsp.Grid {
	out := dsp.NewGrid(e.nx, e.ny)
	arr := e.anchors[anchor]
	ant0 := arr.Antenna(0)
	master0 := e.anchors[0].Antenna(0)

	tStep := e.thetas[1] - e.thetas[0]
	dStep := e.deltas[1] - e.deltas[0]
	tMin, tMax := e.thetas[0], e.thetas[len(e.thetas)-1]
	dMin, dMax := e.deltas[0], e.deltas[len(e.deltas)-1]

	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			theta := arr.AngleTo(p)
			if theta < tMin || theta > tMax {
				continue // behind the array: no likelihood contribution
			}
			delta := p.Dist(ant0) - p.Dist(master0)
			if delta < dMin || delta > dMax {
				continue
			}
			ft := (theta - tMin) / tStep
			fd := (delta - dMin) / dStep
			out.Set(ix, iy, polar.Bilinear(fd, ft))
		}
	}
	return out
}

// Likelihood computes the combined XY likelihood of Eq. 17 summed over all
// anchors (§5.3), optionally normalizing each anchor's map to unit maximum
// first. The per-anchor maps are also returned for inspection (Fig. 6c,
// Fig. 8c). Anchors are processed in parallel: each map touches only its
// own grid, and summation happens after the barrier.
//
// In degraded mode (partial alpha), anchors with no usable band are
// skipped entirely — their perAnchor entry is nil and they contribute
// nothing to the combined sum, instead of adding a normalized all-zero
// (or noise-only) map.
func (e *Engine) Likelihood(a *Alpha) (combined *dsp.Grid, perAnchor []*dsp.Grid) {
	I := a.NumAnchors()
	perAnchor = make([]*dsp.Grid, I)
	var wg sync.WaitGroup
	for i := 0; i < I; i++ {
		if a.PresentBands(i) == 0 {
			continue // absent anchor: no likelihood contribution
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			polar := e.polarLikelihood(a, i)
			xy := e.polarToXY(polar, i)
			if e.cfg.NormalizePerAnchor {
				xy.Normalize()
			}
			perAnchor[i] = xy
		}(i)
	}
	wg.Wait()
	combined = dsp.NewGrid(e.nx, e.ny)
	for _, xy := range perAnchor {
		if xy != nil {
			combined.AddGrid(xy)
		}
	}
	return combined, perAnchor
}

// AngleLikelihoodXY maps Eq. 15 over the XY plane for one anchor: each
// cell gets the angular spectrum value of its direction (Fig. 6a).
func (e *Engine) AngleLikelihoodXY(a *Alpha, anchor int) *dsp.Grid {
	spec := e.angleSpectrum(a.Freqs, a.Values, a.Have, anchor)
	return e.angleSpectrumToXY(spec, anchor)
}

// angleSpectrumToXY paints a θ spectrum over the XY grid.
func (e *Engine) angleSpectrumToXY(spec []float64, anchor int) *dsp.Grid {
	out := dsp.NewGrid(e.nx, e.ny)
	arr := e.anchors[anchor]
	tStep := e.thetas[1] - e.thetas[0]
	tMin, tMax := e.thetas[0], e.thetas[len(e.thetas)-1]
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			theta := arr.AngleTo(e.CellCenter(ix, iy))
			if theta < tMin || theta > tMax {
				continue
			}
			ft := (theta - tMin) / tStep
			t0 := int(ft)
			t1 := t0 + 1
			if t1 > len(spec)-1 {
				t1 = len(spec) - 1
			}
			fr := ft - float64(t0)
			out.Set(ix, iy, spec[t0]*(1-fr)+spec[t1]*fr)
		}
	}
	return out
}

// DistanceLikelihoodXY maps Eq. 16 over the XY plane for one anchor: each
// cell gets the relative-distance profile value of its hyperbola
// coordinate (Fig. 6b).
func (e *Engine) DistanceLikelihoodXY(a *Alpha, anchor int) *dsp.Grid {
	spec := e.distanceSpectrum(a, anchor)
	out := dsp.NewGrid(e.nx, e.ny)
	ant0 := e.anchors[anchor].Antenna(0)
	master0 := e.anchors[0].Antenna(0)
	dStep := e.deltas[1] - e.deltas[0]
	dMin, dMax := e.deltas[0], e.deltas[len(e.deltas)-1]
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			delta := p.Dist(ant0) - p.Dist(master0)
			if delta < dMin || delta > dMax {
				continue
			}
			fd := (delta - dMin) / dStep
			d0 := int(fd)
			d1 := d0 + 1
			if d1 > len(spec)-1 {
				d1 = len(spec) - 1
			}
			fr := fd - float64(d0)
			out.Set(ix, iy, spec[d0]*(1-fr)+spec[d1]*fr)
		}
	}
	return out
}

// GridPoint converts a grid peak to room coordinates.
func (e *Engine) GridPoint(p dsp.Peak) geom.Point { return e.CellCenter(p.IX, p.IY) }
