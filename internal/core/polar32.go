package core

import (
	"math"
)

// float32 SoA variants of the Eq. 15–17 polar kernel (polar.go) for the
// gated search. Three departures from the float64 oracle kernel, each
// bounded by a dedicated test:
//
//   - The Δ accumulation runs on the planeSet's float32 SoA lanes,
//     halving the memory traffic of the likelihood's dominant loop
//     (TestPolarFill32Golden pins the float32 plane to the oracle).
//   - The beamforming sum B(θ, k) reads the precomputed rotor powers
//     (planeSet.stepPows) instead of walking a serial rotor chain, and
//     the per-band phase product e^{−ι w_k D_i}·conj(e^{−ι w_k D_r}) is
//     folded into the channel coefficients once per call (bfCoeffs) —
//     both are exact restructurings, not approximations.
//   - The refinement sweep exploits that the polar magnitude is smooth:
//     along Δ it is band-limited by the sounded channel spread
//     (correlation scale of meters against a few-centimeter grid), and
//     along θ a J-element array's beam pattern has only ~J degrees of
//     freedom across the aperture. polarFill32 therefore evaluates every
//     RefineDeltaStep-th column of every RefineThetaStep-th row exactly
//     and fills the rest by linear interpolation
//     (TestPolarFill32InterpError bounds the error at peak cells).
//
// The float64 kernel remains the golden-oracle path; these only feed
// the gated search, whose estimates are guarded by the fallback
// triggers and the parity tests.

// bfCoeffs folds the anchor/reference phase rotors into one anchor's
// corrected-channel coefficients: avp[k*J+j] = α_kj · e^{−ι w_k D_i} ·
// conj(e^{−ι w_k D_r}), with absent bands zeroed so the row loops skip
// them via the exact b == 0 test. avp must be K·J long.
func bfCoeffs(ps *planeSet, a *Alpha, anchor int, avp []complex128) {
	K, J := a.NumBands(), a.NumAntennas()
	phase := ps.phase[anchor]
	rphase := ps.phase[a.Ref]
	for k := 0; k < K; k++ {
		row := avp[k*J : k*J+J]
		if !a.Present(k, anchor) {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		m := phase[k] * conj(rphase[k])
		av := a.Values[k][anchor]
		for j := 0; j < J; j++ {
			row[j] = av[j] * m
		}
	}
}

// beamSum evaluates B(θ_t, k) from the folded coefficients and the
// precomputed rotor powers pk (the P = J−1 powers for this (row, band)).
// The J = 4 case — the paper's arrays — is unrolled so the three
// independent complex multiplies pipeline instead of serializing.
func beamSum(c []complex128, pk []complex128, J int) complex128 {
	if J == 4 {
		return c[0] + c[1]*pk[0] + c[2]*pk[1] + c[3]*pk[2]
	}
	b := c[0]
	for j := 1; j < J; j++ {
		b += c[j] * pk[j-1]
	}
	return b
}

// coarsePolarFill32 evaluates one anchor's polar likelihood at the
// decimated (θ, Δ) samples of the coarse pass: row ct is the full-grid
// row ct·CoarseThetaStep, column cd the full-grid column
// cd·CoarseDeltaStep, read from the planeSet's contiguous coarse lanes.
// Only the per-row spans of cp are computed; cpolar must be cT·cD long,
// acc at least 2·cD, and avp holds this anchor's bfCoeffs.
func (e *Engine) coarsePolarFill32(ps *planeSet, cp *coarseProj, a *Alpha, anchor, cT, cD int, cpolar, acc []float32, avp []complex128) {
	K, J := a.NumBands(), a.NumAntennas()
	ts := e.cfg.Gate.CoarseThetaStep
	pows := ps.stepPows[e.spacingIdx[anchor]]
	P := ps.stepP
	accRe, accIm := acc[:cD], acc[cD:2*cD]

	for ct := 0; ct < cT; ct++ {
		lo, hi := int(cp.dLo[ct]), int(cp.dHi[ct])
		if lo >= hi {
			continue // no coarse cell samples this row
		}
		are, aim := accRe[lo:hi], accIm[lo:hi]
		for d := range are {
			are[d] = 0
			aim[d] = 0
		}
		t := ct * ts
		prow := pows[t*K*P : (t*K+K)*P]
		for k := 0; k < K; k++ {
			b := beamSum(avp[k*J:k*J+J], prow[k*P:k*P+P], J)
			//lint:ignore floateq skip beamforming sums that are exactly zero
			if b == 0 {
				continue
			}
			bRe, bIm := float32(real(b)), float32(imag(b))
			row := k * cD
			bre, bim := ps.cbaseRe32[row+lo:row+hi], ps.cbaseIm32[row+lo:row+hi]
			for d := range bre {
				are[d] += bRe*bre[d] - bIm*bim[d]
				aim[d] += bRe*bim[d] + bIm*bre[d]
			}
		}
		out := cpolar[ct*cD+lo : ct*cD+hi]
		for d := range out {
			out[d] = float32(math.Sqrt(float64(are[d]*are[d] + aim[d]*aim[d])))
		}
	}
}

// polarFill32 computes one anchor's full-resolution polar likelihood
// into polar (T·D float32), restricted per θ row to the half-open Δ span
// [rowLo[t], rowHi[t]) — the union of the selected refinement tiles'
// polar bounding boxes. Rows with an empty span are skipped and their
// cells left stale; the tiled projection reads only spanned cells. acc
// must be at least 2·D and avp holds this anchor's bfCoeffs.
//
// Sampling: only every RefineThetaStep-th row (plus the last) is
// evaluated, over the union of its neighbors' spans so the skipped rows
// can be interpolated from fully-painted sources; within a row the
// sweep evaluates every RefineDeltaStep-th column (plus the final one).
// Both strides at 1 recover the exact kernel, which is what the golden
// test pins against the float64 oracle.
func (e *Engine) polarFill32(ps *planeSet, a *Alpha, anchor int, polar []float32, rowLo, rowHi []int32, acc []float32, avp []complex128) {
	D, K := len(e.deltas), a.NumBands()
	J := a.NumAntennas()
	S := e.cfg.Gate.RefineDeltaStep
	RT := e.cfg.Gate.RefineThetaStep
	T := len(rowLo)
	pows := ps.stepPows[e.spacingIdx[anchor]]
	P := ps.stepP
	accRe, accIm := acc[:D], acc[D:2*D]

	for t := 0; t < T; t++ {
		if t%RT != 0 && t != T-1 {
			continue
		}
		// Effective span: the union over the rows this sample supports,
		// so every interpolated cell has painted sources.
		lo, hi := D, 0
		for u := t - RT + 1; u <= t+RT-1; u++ {
			if u < 0 || u >= T {
				continue
			}
			if int(rowLo[u]) < lo {
				lo = int(rowLo[u])
			}
			if int(rowHi[u]) > hi {
				hi = int(rowHi[u])
			}
		}
		if lo >= hi {
			continue
		}
		// Exact samples at lo, lo+S, …, lo+(m-1)·S, stored compactly in
		// acc[0:m]; one extra sample at hi-1 when the stride misses it.
		m := (hi-1-lo)/S + 1
		last := lo + (m-1)*S
		tailRe, tailIm := float32(0), float32(0)
		needTail := last < hi-1
		are, aim := accRe[:m], accIm[:m]
		for i := range are {
			are[i] = 0
			aim[i] = 0
		}
		prow := pows[t*K*P : (t*K+K)*P]
		for k := 0; k < K; k++ {
			b := beamSum(avp[k*J:k*J+J], prow[k*P:k*P+P], J)
			//lint:ignore floateq skip beamforming sums that are exactly zero
			if b == 0 {
				continue
			}
			bRe, bIm := float32(real(b)), float32(imag(b))
			row := k * D
			bre, bim := ps.baseRe32[row:row+D], ps.baseIm32[row:row+D]
			idx := lo
			for i := 0; i < m; i++ {
				br, bi := bre[idx], bim[idx]
				are[i] += bRe*br - bIm*bi
				aim[i] += bRe*bi + bIm*br
				idx += S
			}
			if needTail {
				br, bi := bre[hi-1], bim[hi-1]
				tailRe += bRe*br - bIm*bi
				tailIm += bRe*bi + bIm*br
			}
		}
		// Magnitudes land at their true columns; the gaps are filled
		// in place (interpolation writes strictly between samples).
		out := polar[t*D : t*D+D]
		idx := lo
		for i := 0; i < m; i++ {
			out[idx] = float32(math.Sqrt(float64(are[i]*are[i] + aim[i]*aim[i])))
			idx += S
		}
		if needTail {
			out[hi-1] = float32(math.Sqrt(float64(tailRe*tailRe + tailIm*tailIm)))
		}
		if S > 1 {
			p0 := lo
			for p0 < hi-1 {
				p1 := p0 + S
				if p1 > hi-1 {
					p1 = hi - 1
				}
				v0 := out[p0]
				slope := (out[p1] - v0) / float32(p1-p0)
				for d := p0 + 1; d < p1; d++ {
					out[d] = v0 + slope*float32(d-p0)
				}
				p0 = p1
			}
		}
	}
	if RT == 1 {
		return
	}
	// Interpolate the skipped rows from their sampled neighbors, each of
	// which was painted over a superset of this row's span.
	for t := 0; t < T; t++ {
		if t%RT == 0 || t == T-1 {
			continue
		}
		lo, hi := int(rowLo[t]), int(rowHi[t])
		if lo >= hi {
			continue
		}
		t0 := t - t%RT
		t1 := t0 + RT
		if t1 > T-1 {
			t1 = T - 1
		}
		f := float32(t-t0) / float32(t1-t0)
		r0 := polar[t0*D : t0*D+D]
		r1 := polar[t1*D : t1*D+D]
		out := polar[t*D : t*D+D]
		for d := lo; d < hi; d++ {
			out[d] = r0[d]*(1-f) + r1[d]*f
		}
	}
}
