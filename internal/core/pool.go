package core

import (
	"bloc/internal/csi"
	"bloc/internal/dsp"
)

// Scratch pools. Every buffer the steady-state fix path needs — polar
// grids, per-anchor XY grids, complex accumulator planes, the corrected-
// channel workspace, the peak-entropy window — is recycled through
// sync.Pools owned by the engine, so after warm-up a fix performs no
// likelihood-sized allocations. Hit/miss counters feed Stats.

// getFloats returns a pooled float64 slice of length n (engine-wide pool;
// capacity is grown to the largest request seen).
func (e *Engine) getFloats(n int) *[]float64 {
	if v, ok := e.floatPool.Get().(*[]float64); ok {
		e.statPoolHits.Add(1)
		if cap(*v) < n {
			*v = make([]float64, n)
		}
		*v = (*v)[:n]
		return v
	}
	e.statPoolMisses.Add(1)
	s := make([]float64, n)
	return &s
}

func (e *Engine) putFloats(v *[]float64) { e.floatPool.Put(v) }

// getInts returns a pooled int slice with length 0 and capacity ≥ n.
func (e *Engine) getInts(n int) *[]int {
	if v, ok := e.intPool.Get().(*[]int); ok {
		e.statPoolHits.Add(1)
		if cap(*v) < n {
			*v = make([]int, 0, n)
		}
		*v = (*v)[:0]
		return v
	}
	e.statPoolMisses.Add(1)
	s := make([]int, 0, n)
	return &s
}

func (e *Engine) putInts(v *[]int) { e.intPool.Put(v) }

// getPeaks returns a pooled, length-0 peak-extraction scratch.
func (e *Engine) getPeaks() *[]dsp.Peak {
	if v, ok := e.peakPool.Get().(*[]dsp.Peak); ok {
		e.statPoolHits.Add(1)
		*v = (*v)[:0]
		return v
	}
	e.statPoolMisses.Add(1)
	s := make([]dsp.Peak, 0, 16)
	return &s
}

func (e *Engine) putPeaks(v *[]dsp.Peak) { e.peakPool.Put(v) }

// likRun is the reusable workspace of one Likelihood evaluation: the
// per-active-anchor polar and XY grids plus the per-tile partial maxima.
type likRun struct {
	polars []*dsp.Grid
	xys    []*dsp.Grid
	maxima []float64
	inv    []float64
	off    []int // projection-tile offset per active anchor
}

func (e *Engine) getRun() *likRun {
	if r, ok := e.runPool.Get().(*likRun); ok {
		e.statPoolHits.Add(1)
		return r
	}
	e.statPoolMisses.Add(1)
	return &likRun{}
}

func (e *Engine) putRun(r *likRun) {
	// Grids were already returned to their pools (or handed to the
	// caller); only the slice headers are retained.
	r.polars = r.polars[:0]
	r.xys = r.xys[:0]
	r.maxima = r.maxima[:0]
	r.inv = r.inv[:0]
	r.off = r.off[:0]
	e.runPool.Put(r)
}

// grow appends zero values until the slice has length n, reusing capacity.
func growGrids(s []*dsp.Grid, n int) []*dsp.Grid {
	s = s[:0]
	for i := 0; i < n; i++ {
		s = append(s, nil)
	}
	return s
}

func growFloats(s []float64, n int) []float64 {
	s = s[:0]
	for i := 0; i < n; i++ {
		s = append(s, 0)
	}
	return s
}

func growInts(s []int, n int) []int {
	s = s[:0]
	for i := 0; i < n; i++ {
		s = append(s, 0)
	}
	return s
}

// gatedRun is the reusable workspace of one gated fix (gated.go): the
// coarse polar/combined planes, the per-anchor coarse maxima, the
// refinement polar plane with its per-row spans, the tile-selection
// masks and the painted-value staging buffer. The struct owns all of
// its slices; recycling the struct recycles every buffer at once.
type gatedRun struct {
	active       []int
	cpolar       []float32    // decimated polar plane (cT·cD)
	ccomb        []float32    // coarse combined XY plane (cnx·cny)
	cvals        []float32    // one anchor's projected coarse values
	cmax         []float64    // per-anchor coarse map maximum
	acc          []float32    // re/im accumulator planes (2·D)
	polar        []float32    // full-resolution polar plane (T·D)
	rowLo, rowHi []int32      // per-θ-row Δ spans of the selected tiles
	sel, dil     []bool       // tile selection mask and its 1-ring dilation
	vals         []float32    // painted tile values awaiting normalization
	avp          []complex128 // folded beamforming coefficients (bfCoeffs)
}

func (e *Engine) getGatedRun() *gatedRun {
	if r, ok := e.gatedPool.Get().(*gatedRun); ok {
		e.statPoolHits.Add(1)
		return r
	}
	e.statPoolMisses.Add(1)
	return &gatedRun{}
}

func (e *Engine) putGatedRun(r *gatedRun) { e.gatedPool.Put(r) }

// growF32 and friends resize a scratch slice to length n, reusing
// capacity. Contents are stale — callers clear() the buffers that are
// read before being fully painted.
func growF32(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growC128(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}

// alphaBox is a pooled corrected-channel workspace: one flat backing
// array for all K×I×J α values (plus the presence mask), with the nested
// slice headers Alpha's shape requires carved out once.
type alphaBox struct {
	a        Alpha
	k, i, j  int
	flat     []complex128
	rows     [][]complex128
	haveFlat []bool
	haveRows [][]bool
}

// getAlpha returns a pooled workspace shaped (K, I, J). A box recycled
// from a different shape is rebuilt.
func (e *Engine) getAlpha(K, I, J int) *alphaBox {
	b, ok := e.alphaPool.Get().(*alphaBox)
	if ok && b.k == K && b.i == I && b.j == J {
		e.statPoolHits.Add(1)
		return b
	}
	e.statPoolMisses.Add(1)
	b = &alphaBox{
		k: K, i: I, j: J,
		flat:     make([]complex128, K*I*J),
		rows:     make([][]complex128, K*I),
		haveFlat: make([]bool, K*I),
		haveRows: make([][]bool, K),
	}
	b.a.Values = make([][][]complex128, K)
	for k := 0; k < K; k++ {
		b.a.Values[k] = b.rows[k*I : (k+1)*I]
		b.haveRows[k] = b.haveFlat[k*I : (k+1)*I]
		for i := 0; i < I; i++ {
			off := (k*I + i) * J
			b.rows[k*I+i] = b.flat[off : off+J]
		}
	}
	return b
}

func (e *Engine) putAlpha(b *alphaBox) { e.alphaPool.Put(b) }

// correctInto is CorrectRef writing into a pooled workspace instead of
// freshly allocated nested slices. The arithmetic, finite guards and
// masking are identical to CorrectRef's (they share refFactor/alphaRow),
// which the golden parity tests assert bit for bit.
func (e *Engine) correctInto(s *csi.Snapshot, ref int, b *alphaBox) *Alpha {
	K, I := b.k, b.i
	b.a.Freqs = s.Freqs
	b.a.Ref = ref
	anyMasked := false
	guardTrips := uint64(0)
	for k := 0; k < K; k++ {
		refOK, mr := refFactor(s, k, ref)
		for i := 0; i < I; i++ {
			row := b.rows[k*I+i]
			ok := refOK && s.Present(k, i)
			if ok {
				ok = alphaRow(row, s.Tag[k][i], s.Master[k][i], mr)
			} else {
				clear(row) // recycled memory: zero like CorrectRef's fresh rows
			}
			b.haveRows[k][i] = ok
			if !ok {
				anyMasked = true
				if s.Present(k, i) && s.Present(k, ref) {
					// The row arrived but the finite/denormal guard
					// rejected the conjugate product.
					guardTrips++
				}
			}
		}
	}
	if s.Have == nil && !anyMasked {
		b.a.Have = nil
	} else {
		b.a.Have = b.haveRows
	}
	if guardTrips > 0 {
		e.statRowsMasked.Add(guardTrips)
	}
	return &b.a
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
