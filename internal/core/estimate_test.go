package core

import (
	"testing"

	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

func TestLocateAoAFreeSpace(t *testing.T) {
	// With clean LOS, AoA triangulation from 4 anchors should also be
	// accurate — the baseline is only weak under multipath.
	env := testbed.CleanEnvironment(10)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(0.9, 0.6)
	res, err := e.LocateAoA(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Dist(tag) > 0.35 {
		t.Errorf("AoA free-space error %.3f m too large", res.Estimate.Dist(tag))
	}
}

func TestBLocBeatsAoAInMultipath(t *testing.T) {
	// The headline claim (§8.2): in the multipath-rich room BLoc's joint
	// angle+distance likelihood with multipath rejection beats
	// AoA-combining. Tested over several positions; BLoc must win on
	// aggregate error.
	d, err := testbed.Paper(14)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tags := []geom.Point{
		geom.Pt(0.8, -1.1), geom.Pt(-1.6, 0.4), geom.Pt(1.7, 1.9),
		geom.Pt(-0.3, -2.1), geom.Pt(0.1, 0.9), geom.Pt(-2.0, 2.2),
		geom.Pt(1.2, -0.3), geom.Pt(2.0, -2.2),
	}
	var blocSum, aoaSum float64
	for _, tag := range tags {
		snap := d.Sounding(tag)
		rb, err := e.Locate(snap)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := e.LocateAoA(snap)
		if err != nil {
			t.Fatal(err)
		}
		blocSum += rb.Estimate.Dist(tag)
		aoaSum += ra.Estimate.Dist(tag)
	}
	blocMean := blocSum / float64(len(tags))
	aoaMean := aoaSum / float64(len(tags))
	t.Logf("mean error: BLoc %.3f m, AoA %.3f m", blocMean, aoaMean)
	if blocMean >= aoaMean {
		t.Errorf("BLoc (%.3f m) did not beat AoA baseline (%.3f m)", blocMean, aoaMean)
	}
	if blocMean > 1.2 {
		t.Errorf("BLoc mean error %.3f m too large for the paper room", blocMean)
	}
}

func TestLocateRSSI(t *testing.T) {
	// Free space: RSSI ranging is exact in our amplitude model, so the
	// baseline should work there...
	env := testbed.CleanEnvironment(12)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(0.5, 1.0)
	res, err := e.LocateRSSI(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Dist(tag) > 0.4 {
		t.Errorf("RSSI free-space error %.3f m", res.Estimate.Dist(tag))
	}
	// ...but multipath fading must hurt it badly relative to free space.
	dm, err := testbed.Paper(12)
	if err != nil {
		t.Fatal(err)
	}
	em := paperEngine(t, dm)
	var worst float64
	for _, tg := range []geom.Point{geom.Pt(0.5, 1.0), geom.Pt(-1.2, -0.8), geom.Pt(1.8, 0.3)} {
		rm, err := em.LocateRSSI(dm.Sounding(tg))
		if err != nil {
			t.Fatal(err)
		}
		if e := rm.Estimate.Dist(tg); e > worst {
			worst = e
		}
	}
	if worst < 0.3 {
		t.Errorf("RSSI in the multipath room is suspiciously accurate (worst %.3f m)", worst)
	}
}

func TestShortestDistanceSelectorDiffersFromBLoc(t *testing.T) {
	// §8.7: the two selectors share the likelihood but choose peaks
	// differently. Both must return valid results; BLoc must be at least
	// as accurate on aggregate over multipath positions.
	d, err := testbed.Paper(15)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tags := []geom.Point{
		geom.Pt(0.8, -1.1), geom.Pt(-1.6, 0.4), geom.Pt(1.7, 1.9),
		geom.Pt(-0.4, 2.4), geom.Pt(0.0, -0.5), geom.Pt(-2.1, -2.3),
	}
	var blocSum, sdSum float64
	for _, tag := range tags {
		snap := d.Sounding(tag)
		rb, err := e.Locate(snap)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := e.LocateShortestDistance(snap)
		if err != nil {
			t.Fatal(err)
		}
		blocSum += rb.Estimate.Dist(tag)
		sdSum += rs.Estimate.Dist(tag)
	}
	t.Logf("mean error: BLoc %.3f m, shortest-distance %.3f m",
		blocSum/float64(len(tags)), sdSum/float64(len(tags)))
	if blocSum > sdSum*1.15 {
		t.Errorf("BLoc (%.3f) clearly worse than shortest-distance (%.3f)", blocSum, sdSum)
	}
}

func TestCandidatesCarryScoreComponents(t *testing.T) {
	d, err := testbed.Paper(16)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	res, err := e.Locate(d.Sounding(geom.Pt(0.3, 0.3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range res.Candidates {
		if c.PeakValue <= 0 || c.SumDist <= 0 {
			t.Errorf("degenerate candidate %+v", c)
		}
		if !d.Env.Room.Contains(c.Loc) {
			t.Errorf("candidate %v outside room", c.Loc)
		}
	}
	if res.Likelihood == nil {
		t.Error("result missing likelihood grid")
	}
}

func TestBestSelectors(t *testing.T) {
	cands := []Candidate{
		{Loc: geom.Pt(0, 0), Score: 1, SumDist: 10},
		{Loc: geom.Pt(1, 1), Score: 3, SumDist: 12},
		{Loc: geom.Pt(2, 2), Score: 2, SumDist: 5},
	}
	if b, ok := bestByScore(cands); !ok || b.Loc != geom.Pt(1, 1) {
		t.Errorf("bestByScore = %+v", b)
	}
	if b, ok := bestByShortestDistance(cands); !ok || b.Loc != geom.Pt(2, 2) {
		t.Errorf("bestByShortestDistance = %+v", b)
	}
	if _, ok := bestByScore(nil); ok {
		t.Error("empty candidates should report !ok")
	}
	if _, ok := bestByShortestDistance(nil); ok {
		t.Error("empty candidates should report !ok")
	}
}

func TestEntropyScoringPrefersPeakyDirectPath(t *testing.T) {
	// Synthetic check of Eq. 18's discrimination: two candidates with
	// equal peak value and distance, differing only in neighborhood
	// entropy — the peaky one must win.
	g := dsp.NewGrid(40, 40)
	// Diffuse blob at (10, 10).
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			g.Set(10+dx, 10+dy, 1.0)
		}
	}
	// Sharp peak at (30, 30), same height.
	g.Set(30, 30, 1.0)
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			if dx != 0 || dy != 0 {
				g.Set(30+dx, 30+dy, 0.05)
			}
		}
	}
	hFlat := g.PeakNegentropy(10, 10, 7, 1)
	hSharp := g.PeakNegentropy(30, 30, 7, 1)
	if hSharp <= hFlat {
		t.Fatalf("negentropy ordering wrong: sharp %v <= flat %v", hSharp, hFlat)
	}
}

func TestLocateCTEFreeSpace(t *testing.T) {
	// Clean room: the CTE estimator's bearings triangulate to the tag.
	env := testbed.CleanEnvironment(61)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(0.7, 0.9)
	per, err := d.CTESounding(tag, 18, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.LocateCTE(2.44e9, per)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Dist(tag) > 0.35 {
		t.Errorf("CTE free-space error %.3f m", res.Estimate.Dist(tag))
	}
}

func TestCTEInheritsAoAMultipathBlindness(t *testing.T) {
	// The research point of the extension: BLE 5.1's clean standardized
	// angle measurement does not rescue angle-only localization in the
	// multipath room; BLoc's joint estimate stays clearly ahead.
	d, err := testbed.Paper(62)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tags := []geom.Point{
		geom.Pt(0.8, -1.1), geom.Pt(-1.6, 0.4), geom.Pt(1.7, 1.9),
		geom.Pt(-0.3, -2.1), geom.Pt(0.1, 0.9), geom.Pt(-2.0, 2.2),
	}
	var cteSum, blocSum float64
	for _, tag := range tags {
		per, err := d.CTESounding(tag, 18, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := e.LocateCTE(2.44e9, per)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := e.Locate(d.Sounding(tag))
		if err != nil {
			t.Fatal(err)
		}
		cteSum += rc.Estimate.Dist(tag)
		blocSum += rb.Estimate.Dist(tag)
	}
	t.Logf("mean error: CTE %.3f m, BLoc %.3f m", cteSum/6, blocSum/6)
	if blocSum >= cteSum {
		t.Errorf("BLoc (%.2f) did not beat CTE direction finding (%.2f)", blocSum/6, cteSum/6)
	}
}

func TestLocateCTEValidation(t *testing.T) {
	d, err := testbed.Paper(63)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	if _, err := e.LocateCTE(2.44e9, make([][]complex128, 2)); err == nil {
		t.Error("anchor-count mismatch accepted")
	}
	bad := make([][]complex128, 4)
	for i := range bad {
		bad[i] = []complex128{1} // single antenna
	}
	if _, err := e.LocateCTE(2.44e9, bad); err == nil {
		t.Error("single-antenna CTE accepted")
	}
	if _, err := d.CTESounding(geom.Pt(0, 0), 99, 0); err == nil {
		t.Error("invalid channel accepted")
	}
}
