package core

import (
	"math"

	"bloc/internal/rfsim"
)

// This file implements the engine's precompute layer. Everything the
// Eq. 15–17 kernels need that depends only on the deployment — anchor
// geometry, the (θ, Δ) polar grids, the XY room grid and the band plan —
// is hoisted out of the per-fix path into two kinds of tables:
//
//   - Projection tables (anchorProj), built once per reference anchor
//     (reference 0 eagerly in NewEngine, failover references lazily): for
//     every XY cell in front of an anchor, the polar-grid source indices and
//     bilinear weights that polarToXY / angleSpectrumToXY /
//     DistanceLikelihoodXY would otherwise re-derive with atan2/hypot per
//     cell per fix. Cells that project out of range are simply absent
//     from the packed lists. The per-θ-row Δ spans (dLo/dHi) record which
//     polar cells any XY cell actually samples, so the likelihood kernel
//     can skip polar cells nobody will read.
//
//   - Steering planes (planeSet), built once per band plan on first use
//     and cached on the engine: the angular frequencies w_k, the base
//     distance steering e^{ι w_k Δ_d} (shared by all anchors, split into
//     re/im planes so the hot loop is scalar FMA-friendly), the
//     per-anchor phase rotors e^{−ι w_k D_i}, and the per-antenna-spacing
//     angle rotors e^{−ι w_k l sinθ_t}. A deployment uses one band plan,
//     so steady state is a read-lock lookup; band-subset sweeps (Fig. 10,
//     Fig. 11) each build and cache their own plane once.

// projCell maps one XY cell to its four bilinear source cells in a polar
// (θ, Δ) grid. Indices address Grid.Data of a D-wide polar grid.
type projCell struct {
	xy                 int32 // XY cell index (iy*nx + ix)
	i00, i10, i01, i11 int32 // polar source indices
	w00, w10, w01, w11 float64
}

// lineCell maps one XY cell to a linear interpolation between two entries
// of a 1-D spectrum (θ-only or Δ-only likelihood painting).
type lineCell struct {
	xy     int32
	i0, i1 int32
	fr     float64
}

// anchorProj holds one anchor's projection tables.
type anchorProj struct {
	cells []projCell // polar → XY (cells with both θ and Δ in range)
	angle []lineCell // θ spectrum → XY (cells with θ in range)
	dist  []lineCell // Δ spectrum → XY (cells with Δ in range)
	// dLo/dHi give, per θ row, the half-open Δ index span any projCell
	// samples; rows no XY cell maps to have dLo >= dHi and the likelihood
	// kernel skips them entirely.
	dLo, dHi []int32
}

// projections returns the per-anchor projection tables for the given
// reference anchor, building and caching them on first use. Reference 0
// is built eagerly in NewEngine, so the steady state (no failover) is a
// shared-lock map hit.
func (e *Engine) projections(ref int) []anchorProj {
	e.projMu.RLock()
	set, ok := e.projSets[ref]
	e.projMu.RUnlock()
	if ok {
		return set
	}
	e.projMu.Lock()
	defer e.projMu.Unlock()
	if set, ok := e.projSets[ref]; ok {
		return set
	}
	set = e.buildProjectionsFor(ref)
	e.projSets[ref] = set
	return set
}

// buildProjectionsFor derives every anchor's projection tables from the
// deployment geometry for one reference anchor: Δ at each XY cell is the
// distance to the anchor minus the distance to the reference's antenna 0.
// This is the one place the per-cell trigonometry (AngleTo, Dist) of the
// projections still runs — once per (engine, reference) instead of once
// per fix.
func (e *Engine) buildProjectionsFor(ref int) []anchorProj {
	T, D := len(e.thetas), len(e.deltas)
	tStep := e.thetas[1] - e.thetas[0]
	dStep := e.deltas[1] - e.deltas[0]
	tMin, tMax := e.thetas[0], e.thetas[len(e.thetas)-1]
	dMin, dMax := e.deltas[0], e.deltas[len(e.deltas)-1]
	master0 := e.anchors[ref].Antenna(0)

	proj := make([]anchorProj, len(e.anchors))
	for i, arr := range e.anchors {
		ant0 := arr.Antenna(0)
		pr := &proj[i]
		pr.dLo = make([]int32, T)
		pr.dHi = make([]int32, T)
		for t := range pr.dLo {
			pr.dLo[t] = int32(D) // empty span until a cell claims the row
		}
		for iy := 0; iy < e.ny; iy++ {
			for ix := 0; ix < e.nx; ix++ {
				p := e.CellCenter(ix, iy)
				xy := int32(iy*e.nx + ix)
				theta := arr.AngleTo(p)
				delta := p.Dist(ant0) - p.Dist(master0)
				thOK := theta >= tMin && theta <= tMax
				dOK := delta >= dMin && delta <= dMax
				if thOK {
					ft := (theta - tMin) / tStep
					t0 := int(ft)
					t1 := t0 + 1
					if t1 > T-1 {
						t1 = T - 1
					}
					pr.angle = append(pr.angle, lineCell{
						xy: xy, i0: int32(t0), i1: int32(t1), fr: ft - float64(t0),
					})
				}
				if dOK {
					fd := (delta - dMin) / dStep
					d0 := int(fd)
					d1 := d0 + 1
					if d1 > D-1 {
						d1 = D - 1
					}
					pr.dist = append(pr.dist, lineCell{
						xy: xy, i0: int32(d0), i1: int32(d1), fr: fd - float64(d0),
					})
				}
				if thOK && dOK {
					// Mirror dsp.Grid.Bilinear's clamping exactly so the
					// table yields bit-identical samples.
					x := (delta - dMin) / dStep
					y := (theta - tMin) / tStep
					if x > float64(D-1) {
						x = float64(D - 1)
					}
					if y > float64(T-1) {
						y = float64(T - 1)
					}
					x0, y0 := int(x), int(y)
					x1, y1 := x0+1, y0+1
					if x1 > D-1 {
						x1 = D - 1
					}
					if y1 > T-1 {
						y1 = T - 1
					}
					fx, fy := x-float64(x0), y-float64(y0)
					pr.cells = append(pr.cells, projCell{
						xy:  xy,
						i00: int32(y0*D + x0), i10: int32(y0*D + x1),
						i01: int32(y1*D + x0), i11: int32(y1*D + x1),
						w00: (1 - fx) * (1 - fy), w10: fx * (1 - fy),
						w01: (1 - fx) * fy, w11: fx * fy,
					})
					for _, row := range [2]int{y0, y1} {
						if int32(x0) < pr.dLo[row] {
							pr.dLo[row] = int32(x0)
						}
						if int32(x1+1) > pr.dHi[row] {
							pr.dHi[row] = int32(x1 + 1)
						}
					}
				}
			}
		}
	}

	var bytes int
	for i := range proj {
		pr := &proj[i]
		bytes += len(pr.cells)*projCellBytes + (len(pr.angle)+len(pr.dist))*lineCellBytes
		bytes += (len(pr.dLo) + len(pr.dHi)) * 4
	}
	e.statTableBytes.Add(uint64(bytes))
	e.statProjBuilds.Add(1)
	return proj
}

const (
	projCellBytes = 4*5 + 8*4 // five int32 + four float64 (unpadded)
	lineCellBytes = 4*3 + 8
)

// planeSet holds every steering table for one band plan (one freqs
// vector). All fields are immutable after construction.
type planeSet struct {
	freqs []float64 // defensive copy; cache identity
	w     []float64 // angular frequency 2π f_k / c per band

	// Base distance steering e^{ι w_k Δ_d}, row-major [k*D + d], split
	// into components so the accumulation loop runs on flat float64
	// slices. The anchor-dependent part e^{−ι w_k D_i} is factored into
	// phase below, saving an anchors× multiple of this (large) table.
	baseRe, baseIm []float64

	// phase[i][k] = e^{−ι w_k D_i}: folded into B(θ, k) once per band per
	// θ row instead of into every Δ column.
	phase [][]complex128

	// steps[s][t*K + k] = e^{−ι w_k l_s sinθ_t} for the s-th distinct
	// antenna spacing: the per-antenna rotation of Eq. 15/17's inner sum.
	steps [][]complex128

	// stepPows[s][(t*K+k)*P + p-1] = steps[s][t*K+k]^p for p = 1..P,
	// P = maxAntennas−1. The float64 oracle kernel computes these powers
	// with a serial rotor chain per band; the chain's multiply latency is
	// what bounds that loop, so the gated kernels read the precomputed
	// powers instead and the beamforming sum becomes a short independent
	// dot product. nil when every anchor has a single antenna.
	stepPows [][]complex128
	// stepP is P above: the number of powers stored per (θ row, band).
	stepP int

	// Float32 SoA lanes of the base distance steering for the gated
	// path's kernels (polar32.go): the full-resolution mirror of
	// baseRe/baseIm, plus the Δ-decimated coarse lanes the coarse pass
	// reads contiguously (cd ← d = cd·CoarseDeltaStep). Half the memory
	// traffic of the float64 planes; the float64 path above stays the
	// 1e-9 golden-oracle kernel.
	baseRe32, baseIm32   []float32 // [k*D + d]
	cbaseRe32, cbaseIm32 []float32 // [k*cD + cd]

	bytes int
}

// hashFreqs keys the plane cache by the exact bit pattern of the band
// plan (FNV-1a over the float bits; equality is re-checked on lookup).
func hashFreqs(freqs []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, f := range freqs {
		b := math.Float64bits(f)
		for s := 0; s < 64; s += 8 {
			h ^= (b >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// sameFreqs compares band plans by exact bit pattern (avoiding float ==,
// and treating NaN payloads consistently).
func sameFreqs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// planesFor returns the steering planes for the given band plan, building
// and caching them on first use. Steady state is a shared-lock map hit.
func (e *Engine) planesFor(freqs []float64) *planeSet {
	h := hashFreqs(freqs)
	e.planeMu.RLock()
	for _, ps := range e.planes[h] {
		if sameFreqs(ps.freqs, freqs) {
			e.planeMu.RUnlock()
			return ps
		}
	}
	e.planeMu.RUnlock()

	e.planeMu.Lock()
	defer e.planeMu.Unlock()
	for _, ps := range e.planes[h] {
		if sameFreqs(ps.freqs, freqs) {
			return ps
		}
	}
	ps := e.buildPlanes(freqs)
	if e.planes == nil {
		e.planes = make(map[uint64][]*planeSet)
	}
	e.planes[h] = append(e.planes[h], ps)
	e.statPlaneBuilds.Add(1)
	e.statTableBytes.Add(uint64(ps.bytes))
	return ps
}

// buildPlanes computes a planeSet for one band plan.
func (e *Engine) buildPlanes(freqs []float64) *planeSet {
	K, T, D := len(freqs), len(e.thetas), len(e.deltas)
	ps := &planeSet{
		freqs:  append([]float64(nil), freqs...),
		w:      make([]float64, K),
		baseRe: make([]float64, K*D),
		baseIm: make([]float64, K*D),
		phase:  make([][]complex128, len(e.anchors)),
		steps:  make([][]complex128, len(e.spacings)),
	}
	for k, f := range freqs {
		ps.w[k] = 2 * math.Pi * f / rfsim.SpeedOfLight
	}
	ds := e.cfg.Gate.CoarseDeltaStep
	cD := (D + ds - 1) / ds
	ps.baseRe32 = make([]float32, K*D)
	ps.baseIm32 = make([]float32, K*D)
	ps.cbaseRe32 = make([]float32, K*cD)
	ps.cbaseIm32 = make([]float32, K*cD)
	for k := 0; k < K; k++ {
		row := k * D
		crow := k * cD
		for d, delta := range e.deltas {
			s, c := math.Sincos(ps.w[k] * delta)
			ps.baseRe[row+d] = c
			ps.baseIm[row+d] = s
			ps.baseRe32[row+d] = float32(c)
			ps.baseIm32[row+d] = float32(s)
			if d%ds == 0 {
				ps.cbaseRe32[crow+d/ds] = float32(c)
				ps.cbaseIm32[crow+d/ds] = float32(s)
			}
		}
	}
	for i := range e.anchors {
		ph := make([]complex128, K)
		for k := 0; k < K; k++ {
			s, c := math.Sincos(-ps.w[k] * e.anchorDist[i])
			ph[k] = complex(c, s)
		}
		ps.phase[i] = ph
	}
	for si, l := range e.spacings {
		st := make([]complex128, T*K)
		for t, sinT := range e.sinThetas {
			row := t * K
			for k := 0; k < K; k++ {
				s, c := math.Sincos(-ps.w[k] * l * sinT)
				st[row+k] = complex(c, s)
			}
		}
		ps.steps[si] = st
	}
	maxJ := 0
	for _, arr := range e.anchors {
		if arr.N > maxJ {
			maxJ = arr.N
		}
	}
	if P := maxJ - 1; P > 0 {
		ps.stepP = P
		ps.stepPows = make([][]complex128, len(e.spacings))
		for si := range e.spacings {
			st := ps.steps[si]
			pw := make([]complex128, T*K*P)
			for tk, step := range st {
				cur := step
				for p := 0; p < P; p++ {
					pw[tk*P+p] = cur
					cur *= step
				}
			}
			ps.stepPows[si] = pw
		}
	}
	ps.bytes = len(ps.freqs)*8 + len(ps.w)*8 +
		(len(ps.baseRe)+len(ps.baseIm))*8 +
		(len(ps.baseRe32)+len(ps.baseIm32)+len(ps.cbaseRe32)+len(ps.cbaseIm32))*4 +
		len(ps.phase)*K*16 + len(ps.steps)*T*K*16 +
		len(ps.stepPows)*T*K*ps.stepP*16
	return ps
}
