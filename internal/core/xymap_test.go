package core

import (
	"math"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

func TestPolarToXYBounds(t *testing.T) {
	// Cells behind an array or outside the Δ range must stay zero, and
	// everything in front must be finite and non-negative.
	env := testbed.CleanEnvironment(31)
	d, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	a, err := Correct(d.Sounding(geom.Pt(0.5, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	polar := e.polarLikelihood(a, 1)
	xy := e.polarToXY(polar, 1, 0)
	nx, ny := e.GridSize()
	arr := d.Anchors[1]
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			v := xy.At(ix, iy)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("cell (%d,%d) = %v", ix, iy, v)
			}
			p := e.CellCenter(ix, iy)
			theta := arr.AngleTo(p)
			if math.Abs(theta) > math.Pi/2+0.02 && v != 0 {
				t.Fatalf("cell %v behind array has likelihood %v", p, v)
			}
		}
	}
}

func TestPolarLikelihoodNonNegativeAndPeaked(t *testing.T) {
	env := testbed.CleanEnvironment(32)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(1.0, -0.5)
	a, err := Correct(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	polar := e.polarLikelihood(a, 1)
	gmax, ix, iy := polar.Max()
	if gmax <= 0 {
		t.Fatal("empty polar likelihood")
	}
	// The max must sit near the true (θ, Δ).
	gotTheta := e.thetas[iy]
	gotDelta := e.deltas[ix]
	wantTheta := d.Anchors[1].AngleTo(tag)
	wantDelta := tag.Dist(d.Anchors[1].Antenna(0)) - tag.Dist(d.Anchors[0].Antenna(0))
	if math.Abs(gotTheta-wantTheta) > geom.Rad(4) {
		t.Errorf("polar θ max at %.1f°, want %.1f°", geom.Deg(gotTheta), geom.Deg(wantTheta))
	}
	if math.Abs(gotDelta-wantDelta) > 0.6 {
		t.Errorf("polar Δ max at %.2f, want %.2f", gotDelta, wantDelta)
	}
}

func TestAngleLikelihoodXYFanShape(t *testing.T) {
	// The angle-only XY map (Fig. 6a) must be constant along rays from
	// the anchor: two points at the same θ get (nearly) the same value.
	env := testbed.CleanEnvironment(33)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	a, err := Correct(d.Sounding(geom.Pt(0.8, 0.2)))
	if err != nil {
		t.Fatal(err)
	}
	xy := e.AngleLikelihoodXY(a, 0)
	arr := d.Anchors[0] // south wall, broadside +Y
	center := arr.Center()
	dir := geom.Vec(0.3, 1).Unit()
	p1 := center.Add(dir.Scale(1.5))
	p2 := center.Add(dir.Scale(3.0))
	fx1, fy1 := e.cellOf(p1)
	fx2, fy2 := e.cellOf(p2)
	v1 := xy.Bilinear(fx1, fy1)
	v2 := xy.Bilinear(fx2, fy2)
	if v1 <= 0 || v2 <= 0 {
		t.Fatal("fan values empty")
	}
	if math.Abs(v1-v2) > 0.05*math.Max(v1, v2) {
		t.Errorf("fan not radially constant: %v vs %v", v1, v2)
	}
}

func TestLikelihoodPerAnchorNormalization(t *testing.T) {
	d, err := testbed.Paper(34)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(d.Env.Room)
	cfg.NormalizePerAnchor = true
	e, err := NewEngine(d.Anchors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Correct(d.Sounding(geom.Pt(0.2, -0.4)))
	if err != nil {
		t.Fatal(err)
	}
	combined, per := e.Likelihood(a)
	for i, g := range per {
		gmax, _, _ := g.Max()
		if math.Abs(gmax-1) > 1e-9 {
			t.Errorf("anchor %d map max %v, want 1 (normalized)", i, gmax)
		}
	}
	cmax, _, _ := combined.Max()
	if cmax > float64(len(per))+1e-9 || cmax <= 0 {
		t.Errorf("combined max %v outside (0, %d]", cmax, len(per))
	}
}

func TestGridPointRoundTrip(t *testing.T) {
	d, err := testbed.Paper(35)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	p := e.GridPoint(dsp.Peak{IX: 10, IY: 20})
	if p != e.CellCenter(10, 20) {
		t.Error("GridPoint disagrees with CellCenter")
	}
	// cellOf inverts CellCenter.
	fx, fy := e.cellOf(p)
	if math.Abs(fx-10) > 1e-9 || math.Abs(fy-20) > 1e-9 {
		t.Errorf("cellOf = (%v, %v), want (10, 20)", fx, fy)
	}
}

func TestEngineRejectsEmptyAlpha(t *testing.T) {
	d, err := testbed.Paper(36)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	if _, err := e.LocateAlpha(&Alpha{}); err == nil {
		t.Error("empty alpha should be rejected")
	}
	// Alpha with wrong anchor count.
	bands := d.Bands[:2]
	snap := csi.NewSnapshot(bands, 2, 4)
	for b := range snap.Bands {
		for i := range snap.Tag[b] {
			for j := range snap.Tag[b][i] {
				snap.Tag[b][i][j] = 1
			}
			snap.Master[b][i] = 1
		}
	}
	a, err := Correct(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.LocateAlpha(a); err == nil {
		t.Error("anchor-count mismatch should be rejected")
	}
}
