package core

import (
	"math"
	"math/cmplx"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

func calibratedDeployment(t *testing.T, errDeg float64, seed uint64) (*testbed.Deployment, *Calibration) {
	t.Helper()
	env := testbed.CleanEnvironment(seed)
	cfg := testbed.Config{Anchors: 4, Antennas: 4, Seed: seed, AntennaPhaseErrDeg: errDeg}
	d, err := testbed.New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	meas, txPos := d.CalibrationSounding()
	freqs := make([]float64, len(d.Bands))
	for k, ch := range d.Bands {
		freqs[k] = ch.CenterFreq()
	}
	cal, err := EstimateCalibration(d.Anchors, txPos, freqs, meas)
	if err != nil {
		t.Fatal(err)
	}
	return d, cal
}

func TestEstimateCalibrationRecoversTrueErrors(t *testing.T) {
	d, cal := calibratedDeployment(t, 25, 71)
	for i := 0; i < 4; i++ {
		for j := 1; j < 4; j++ {
			// The correction rotor must be the inverse of the true
			// relative error.
			want := cmplx.Conj(d.TrueAntennaError(i, j))
			got := cal.Rotors[i][j]
			diff := math.Abs(geom.WrapAngle(cmplx.Phase(got) - cmplx.Phase(want)))
			if diff > geom.Rad(6) {
				t.Errorf("anchor %d antenna %d: correction off by %.1f°", i, j, geom.Deg(diff))
			}
		}
		if cal.Rotors[i][0] != 1 {
			t.Errorf("anchor %d antenna 0 rotor = %v, want 1", i, cal.Rotors[i][0])
		}
	}
	if cal.MaxErrorDeg() < 5 {
		t.Errorf("MaxErrorDeg = %.1f with σ=25° injected — estimator asleep?", cal.MaxErrorDeg())
	}
}

func TestCalibrationRestoresAccuracy(t *testing.T) {
	// Heavy calibration error degrades angle estimation; applying the
	// self-calibration must recover most of the loss.
	const errDeg = 35
	d, cal := calibratedDeployment(t, errDeg, 72)
	e := paperEngine(t, d)
	tags := []geom.Point{
		geom.Pt(0.8, -0.7), geom.Pt(-1.2, 1.1), geom.Pt(1.6, 1.8), geom.Pt(-0.4, -1.9),
	}
	var rawSum, calSum float64
	for _, tag := range tags {
		snap := d.Sounding(tag)
		raw, err := e.Locate(snap)
		if err != nil {
			t.Fatal(err)
		}
		fixed, err := cal.Apply(snap)
		if err != nil {
			t.Fatal(err)
		}
		corrected, err := e.Locate(fixed)
		if err != nil {
			t.Fatal(err)
		}
		rawSum += raw.Estimate.Dist(tag)
		calSum += corrected.Estimate.Dist(tag)
	}
	t.Logf("mean error: uncalibrated %.3f m, calibrated %.3f m", rawSum/4, calSum/4)
	if calSum > rawSum {
		t.Errorf("calibration worsened accuracy: %.3f -> %.3f", rawSum/4, calSum/4)
	}
	if calSum/4 > 0.3 {
		t.Errorf("calibrated error %.3f m still large in a clean room", calSum/4)
	}
}

func TestCalibrationApplyValidation(t *testing.T) {
	_, cal := calibratedDeployment(t, 10, 73)
	if _, err := cal.Apply(&csi.Snapshot{}); err == nil {
		t.Error("invalid snapshot accepted")
	}
	// Anchor-count mismatch.
	d2, err := testbed.New(testbed.CleanEnvironment(75), testbed.Config{Anchors: 2, Antennas: 4, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cal.Apply(d2.Sounding(geom.Pt(0, 0))); err == nil {
		t.Error("anchor-count mismatch accepted")
	}
}

func TestEstimateCalibrationValidation(t *testing.T) {
	d, err := testbed.New(testbed.CleanEnvironment(74), testbed.Config{Anchors: 2, Antennas: 4, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	meas, txPos := d.CalibrationSounding()
	freqs := make([]float64, len(d.Bands))
	for k, ch := range d.Bands {
		freqs[k] = ch.CenterFreq()
	}
	if _, err := EstimateCalibration(d.Anchors, txPos[:1], freqs, meas); err == nil {
		t.Error("tx position count mismatch accepted")
	}
	if _, err := EstimateCalibration(d.Anchors, txPos, freqs[:3], meas); err == nil {
		t.Error("frequency count mismatch accepted")
	}
	if _, err := EstimateCalibration(d.Anchors, txPos, nil, nil); err == nil {
		t.Error("empty measurements accepted")
	}
}
