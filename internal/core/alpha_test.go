package core

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"bloc/internal/ble"
	"bloc/internal/csi"
)

// synthSnapshot builds a snapshot with known true channels and random LO
// offsets per band, returning both the garbled snapshot and the true
// channels (tag and master legs).
func synthSnapshot(t *testing.T, seed uint64) (garbled *csi.Snapshot, truth *csi.Snapshot) {
	t.Helper()
	bands := ble.DataChannels()[:8]
	const I, J = 3, 4
	rng := rand.New(rand.NewPCG(seed, 0))
	garbled = csi.NewSnapshot(bands, I, J)
	truth = csi.NewSnapshot(bands, I, J)
	for k := range bands {
		// Per-band random offsets: tag and one per anchor.
		phiT := rng.Float64() * 2 * math.Pi
		phiR := make([]float64, I)
		for i := range phiR {
			phiR[i] = rng.Float64() * 2 * math.Pi
		}
		for i := 0; i < I; i++ {
			for j := 0; j < J; j++ {
				h := cmplx.Rect(0.1+rng.Float64(), rng.Float64()*2*math.Pi)
				truth.Tag[k][i][j] = h
				garbled.Tag[k][i][j] = h * cmplx.Rect(1, phiT-phiR[i])
			}
			if i > 0 {
				H := cmplx.Rect(0.1+rng.Float64(), rng.Float64()*2*math.Pi)
				truth.Master[k][i] = H
				garbled.Master[k][i] = H * cmplx.Rect(1, phiR[0]-phiR[i])
			}
		}
	}
	return garbled, truth
}

func TestCorrectCancelsOffsetsExactly(t *testing.T) {
	// Eq. 10: α from the garbled snapshot must equal the same product
	// computed from the true channels — the offsets vanish identically.
	garbled, truth := synthSnapshot(t, 42)
	aG, err := Correct(garbled)
	if err != nil {
		t.Fatal(err)
	}
	aT, err := Correct(truth)
	if err != nil {
		t.Fatal(err)
	}
	for k := range aG.Values {
		for i := range aG.Values[k] {
			for j := range aG.Values[k][i] {
				g, w := aG.Values[k][i][j], aT.Values[k][i][j]
				if cmplx.Abs(g-w) > 1e-12*(1+cmplx.Abs(w)) {
					t.Fatalf("band %d anchor %d ant %d: α garbled %v != true %v", k, i, j, g, w)
				}
			}
		}
	}
}

func TestCorrectMasterAnchorPairwiseCancellation(t *testing.T) {
	// For the master (i=0), Master[k][0] = 1 and the tag/master offsets
	// cancel pairwise: α_0j = h_0j·h*_00 with no residual rotation.
	garbled, truth := synthSnapshot(t, 7)
	a, err := Correct(garbled)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Values {
		want := truth.Tag[k][0][1] * cmplx.Conj(truth.Tag[k][0][0])
		got := a.Values[k][0][1]
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("band %d: master α %v != %v", k, got, want)
		}
		// And α_00 = |h_00|² is real non-negative.
		a00 := a.Values[k][0][0]
		if math.Abs(imag(a00)) > 1e-15 || real(a00) < 0 {
			t.Fatalf("band %d: α_00 = %v not real non-negative", k, a00)
		}
	}
}

func TestCorrectPreservesRelativeAntennaPhase(t *testing.T) {
	// The correction multiplies all antennas of one anchor by the same
	// factor (§5.3 "Effect on Angle Measurements"): the j-to-0 phase
	// ratios of α must equal those of the raw measurement.
	garbled, _ := synthSnapshot(t, 99)
	a, err := Correct(garbled)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Values {
		for i := 0; i < 3; i++ {
			for j := 1; j < 4; j++ {
				rawRatio := garbled.Tag[k][i][j] / garbled.Tag[k][i][0]
				corRatio := a.Values[k][i][j] / a.Values[k][i][0]
				if cmplx.Abs(rawRatio-corRatio) > 1e-9 {
					t.Fatalf("band %d anchor %d: antenna ratio changed by correction", k, i)
				}
			}
		}
	}
}

func TestCorrectRejectsInvalidSnapshot(t *testing.T) {
	if _, err := Correct(&csi.Snapshot{}); err == nil {
		t.Error("Correct accepted an empty snapshot")
	}
}

func TestAlphaDims(t *testing.T) {
	g, _ := synthSnapshot(t, 1)
	a, err := Correct(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBands() != 8 || a.NumAnchors() != 3 || a.NumAntennas() != 4 {
		t.Errorf("dims = (%d, %d, %d)", a.NumBands(), a.NumAnchors(), a.NumAntennas())
	}
	empty := &Alpha{}
	if empty.NumBands() != 0 || empty.NumAnchors() != 0 || empty.NumAntennas() != 0 {
		t.Error("empty alpha dims nonzero")
	}
}
