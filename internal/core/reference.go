package core

import (
	"math"
	"math/cmplx"
	"sync"

	"bloc/internal/dsp"
	"bloc/internal/rfsim"
)

// Reference kernels. These are the original, unoptimized implementations
// of Eq. 15–17 and the polar→XY projection, kept verbatim as the oracle
// the optimized plane/pool/tile kernels are tested against (golden
// equivalence within 1e-9) and benchmarked against. They recompute every
// steering table per call and derive every projection with per-cell
// trigonometry — slow, but transparently close to the paper's math.

// LikelihoodReference computes exactly what Likelihood computes, using
// the reference kernels: per-anchor polar likelihood, per-cell projection
// and per-anchor normalization, summed over anchors. It is the oracle for
// the optimized fix path and is not used by any production caller.
func (e *Engine) LikelihoodReference(a *Alpha) (combined *dsp.Grid, perAnchor []*dsp.Grid) {
	I := a.NumAnchors()
	perAnchor = make([]*dsp.Grid, I)
	var wg sync.WaitGroup
	for i := 0; i < I; i++ {
		if a.PresentBands(i) == 0 {
			continue // absent anchor: no likelihood contribution
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			polar := e.referencePolarLikelihood(a, i)
			xy := e.referencePolarToXY(polar, i, a.Ref)
			if e.cfg.NormalizePerAnchor {
				xy.Normalize()
			}
			perAnchor[i] = xy
		}(i)
	}
	wg.Wait()
	combined = dsp.NewGrid(e.nx, e.ny)
	for _, xy := range perAnchor {
		if xy != nil {
			combined.AddGrid(xy)
		}
	}
	return combined, perAnchor
}

// referencePolarLikelihood evaluates the paper's Eq. 17 for one anchor on
// the engine's (θ, Δd) grid, relative to the alpha's reference r:
//
//	P_i(θ, Δ) = | Σ_j Σ_k α_jk · e^{−ι w_k j l sinθ} · e^{+ι w_k (Δ − (D_i − D_r))} |
//
// with w_k = 2π f_k / c and D_i the known anchor-to-anchor-0 distance
// (D_0 = 0, so reference 0 is the paper's formula verbatim), rebuilding
// the distance steering matrix and per-antenna rotors on every call.
func (e *Engine) referencePolarLikelihood(a *Alpha, anchor int) *dsp.Grid {
	T, D, K := len(e.thetas), len(e.deltas), a.NumBands()
	J := a.NumAntennas()
	l := e.anchors[anchor].Spacing
	dRel := e.anchorDist[anchor] - e.anchorDist[a.Ref]

	// Angular frequency per band.
	w := make([]float64, K)
	for k := 0; k < K; k++ {
		w[k] = 2 * math.Pi * a.Freqs[k] / rfsim.SpeedOfLight
	}

	// Distance steering matrix E[k][d] = e^{+ι w_k (Δ_d − (D_i − D_r))},
	// laid out row-per-band so the inner loop walks contiguous memory.
	E := make([][]complex128, K)
	for k := 0; k < K; k++ {
		row := make([]complex128, D)
		for d, delta := range e.deltas {
			s, c := math.Sincos(w[k] * (delta - dRel))
			row[d] = complex(c, s)
		}
		E[k] = row
	}

	grid := dsp.NewGrid(D, T)
	acc := make([]complex128, D)
	for t, theta := range e.thetas {
		sinT := math.Sin(theta)
		for d := range acc {
			acc[d] = 0
		}
		for k := 0; k < K; k++ {
			if !a.Present(k, anchor) {
				continue // degraded mode: band not measured at this anchor
			}
			// B(θ, k) = Σ_j α_jk · e^{−ι w_k j l sinθ}, built by repeated
			// multiplication with the per-antenna rotation.
			stepS, stepC := math.Sincos(-w[k] * l * sinT)
			step := complex(stepC, stepS)
			rot := complex(1, 0)
			var b complex128
			av := a.Values[k][anchor]
			for j := 0; j < J; j++ {
				b += av[j] * rot
				rot *= step
			}
			//lint:ignore floateq skip beamforming sums that are exactly zero
			if b == 0 {
				continue
			}
			row := E[k]
			for d := 0; d < D; d++ {
				acc[d] += b * row[d]
			}
		}
		rowOut := grid.Data[t*D : (t+1)*D]
		for d := 0; d < D; d++ {
			rowOut[d] = cmplx.Abs(acc[d])
		}
	}
	return grid
}

// referencePolarToXY resamples one anchor's polar likelihood onto the XY
// grid with per-cell trigonometry and bilinear sampling; Δ at each cell
// is measured relative to the reference anchor's antenna 0.
func (e *Engine) referencePolarToXY(polar *dsp.Grid, anchor, ref int) *dsp.Grid {
	out := dsp.NewGrid(e.nx, e.ny)
	arr := e.anchors[anchor]
	ant0 := arr.Antenna(0)
	master0 := e.anchors[ref].Antenna(0)

	tStep := e.thetas[1] - e.thetas[0]
	dStep := e.deltas[1] - e.deltas[0]
	tMin, tMax := e.thetas[0], e.thetas[len(e.thetas)-1]
	dMin, dMax := e.deltas[0], e.deltas[len(e.deltas)-1]

	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			theta := arr.AngleTo(p)
			if theta < tMin || theta > tMax {
				continue // behind the array: no likelihood contribution
			}
			delta := p.Dist(ant0) - p.Dist(master0)
			if delta < dMin || delta > dMax {
				continue
			}
			ft := (theta - tMin) / tStep
			fd := (delta - dMin) / dStep
			out.Set(ix, iy, polar.Bilinear(fd, ft))
		}
	}
	return out
}

// referenceAngleSpectrum evaluates Eq. 15 for one anchor with per-(θ, k)
// trigonometry.
func (e *Engine) referenceAngleSpectrum(freqs []float64, values [][][]complex128, have [][]bool, anchor int) []float64 {
	T := len(e.thetas)
	K := len(values)
	l := e.anchors[anchor].Spacing
	out := make([]float64, T)
	for t, theta := range e.thetas {
		sinT := math.Sin(theta)
		var sum float64
		for k := 0; k < K; k++ {
			if have != nil && !have[k][anchor] {
				continue
			}
			w := 2 * math.Pi * freqs[k] / rfsim.SpeedOfLight
			stepS, stepC := math.Sincos(-w * l * sinT)
			step := complex(stepC, stepS)
			rot := complex(1, 0)
			var b complex128
			row := values[k][anchor]
			for j := range row {
				b += row[j] * rot
				rot *= step
			}
			sum += cmplx.Abs(b)
		}
		out[t] = sum
	}
	return out
}

// referenceDistanceSpectrum evaluates Eq. 16 for one anchor with
// per-(Δ, j, k) trigonometry.
func (e *Engine) referenceDistanceSpectrum(a *Alpha, anchor int) []float64 {
	D := len(e.deltas)
	K := a.NumBands()
	J := a.NumAntennas()
	dRel := e.anchorDist[anchor] - e.anchorDist[a.Ref]
	out := make([]float64, D)
	for d, delta := range e.deltas {
		for j := 0; j < J; j++ {
			var acc complex128
			for k := 0; k < K; k++ {
				if !a.Present(k, anchor) {
					continue
				}
				w := 2 * math.Pi * a.Freqs[k] / rfsim.SpeedOfLight
				s, c := math.Sincos(w * (delta - dRel))
				acc += a.Values[k][anchor][j] * complex(c, s)
			}
			out[d] += cmplx.Abs(acc)
		}
	}
	return out
}
