package core

import (
	"fmt"
	"math"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// Prior-gated coarse-to-fine search. Once a tag is tracked, its Kalman
// confidence ellipse bounds where the next fix can plausibly land, and
// the likelihood surface is sharply peaked — evaluating the whole grid
// is wasted work. LocateOpts runs a two-stage search instead:
//
//  1. A coarse pass evaluates every CoarseStep-th XY cell against a
//     (θ/CoarseThetaStep, Δ/CoarseDeltaStep)-decimated polar grid using
//     float32 SoA kernels (polar32.go). The coarse surface selects
//     refinement tiles (any coarse cell ≥ SelectSafety·PeakMinFrac of
//     the coarse maximum), unioned with every tile the prior ellipse
//     touches, dilated by one tile ring so peak neighborhoods and the
//     entropy window stay covered.
//  2. Only the selected tiles are refined at full resolution: the
//     float32 polar kernel fills just the θ-row/Δ spans the tiles'
//     projection cells sample, and the tiled SoA projection paints the
//     selected cells into a fresh full-resolution grid, which then runs
//     the ordinary peak extraction and Eq. 18 scoring.
//
// The gate refuses — and the fix falls back to the full-grid float64
// path — whenever its assumptions fail: the coarse argmax lands outside
// the (margin-grown) prior ellipse, the coarse surface is too flat to
// select a small tile set, or the refined surface yields no scoreable
// peak. The fallback keeps the reported CDF pinned to the full-grid
// oracle; the gated path only decides *where* to look, never changes
// what a looked-at cell evaluates to beyond float32 rounding.
//
// The whole gated fix runs sequentially on the calling goroutine: at the
// sub-millisecond budget the work no longer amortizes parallelFor's
// task hand-off, and serving-plane parallelism comes from concurrent
// fixes, not from splitting one.

// Prior is a spatial prior for the gated search: the tracker's
// confidence ellipse (center, semi-axes in meters, orientation in
// radians CCW from +x), typically produced by GatePolicy.Prior from
// track.Filter.ConfidenceEllipse.
type Prior struct {
	Center               geom.Point
	SemiMajor, SemiMinor float64
	Theta                float64
}

// Contains reports whether q lies inside the prior ellipse grown by
// margin meters on both axes.
func (p *Prior) Contains(q geom.Point, margin float64) bool {
	a := p.SemiMajor + margin
	b := p.SemiMinor + margin
	if a <= 0 || b <= 0 {
		return false
	}
	d := q.Sub(p.Center)
	s, c := math.Sincos(p.Theta)
	u := d.X*c + d.Y*s
	v := -d.X*s + d.Y*c
	return (u/a)*(u/a)+(v/b)*(v/b) <= 1
}

// Gate-refusal reasons, reported in Result.Fallback and counted in
// Stats.
const (
	FallbackDisagree = "disagree" // coarse argmax outside the prior ellipse
	FallbackLowConf  = "lowconf"  // flat coarse surface selected too many tiles
	FallbackNoPeaks  = "nopeaks"  // refined surface yielded no scoreable peak
)

// GatePolicy turns a tracker's 1σ confidence ellipse into a search Prior
// with hysteretic inflation: every fallback doubles the prior's scale
// (the covariance is evidently under-selling the tag's mobility), every
// gated success halves it back toward 1. A GatePolicy is not safe for
// concurrent use; serving planes hold one per tag under the tag-state
// lock.
type GatePolicy struct {
	// Sigmas is the k of the k·σ ellipse (default 3).
	Sigmas float64
	// InflateOnFallback multiplies the inflation after a fallback
	// (default 2); MaxInflate caps it (default 8).
	InflateOnFallback float64
	MaxInflate        float64
	// MinRadiusM floors each semi-axis in meters (default 0.25), so a
	// fully settled filter still admits measurement-noise-sized motion.
	MinRadiusM float64

	inflate float64
}

// NewGatePolicy returns a policy with the default hysteresis parameters.
func NewGatePolicy() *GatePolicy {
	return &GatePolicy{Sigmas: 3, InflateOnFallback: 2, MaxInflate: 8, MinRadiusM: 0.25, inflate: 1}
}

// scale is the current total k·inflation factor, tolerant of zero-value
// fields so a literal GatePolicy{} still behaves like the defaults.
func (g *GatePolicy) scale() float64 {
	s := g.Sigmas
	if s <= 0 {
		s = 3
	}
	i := g.inflate
	if i < 1 {
		i = 1
	}
	return s * i
}

// Prior scales a 1σ ellipse (center, semi-axes, orientation — the shape
// track.Filter.ConfidenceEllipse(1) reports) by the current
// k·inflation and applies the radius floor.
func (g *GatePolicy) Prior(center geom.Point, semiMajor, semiMinor, theta float64) Prior {
	s := g.scale()
	a, b := semiMajor*s, semiMinor*s
	min := g.MinRadiusM
	if min <= 0 {
		min = 0.25
	}
	if a < min {
		a = min
	}
	if b < min {
		b = min
	}
	return Prior{Center: center, SemiMajor: a, SemiMinor: b, Theta: theta}
}

// Observe updates the hysteresis from a fix outcome: gated successes
// decay the inflation, fallbacks grow it. Full-grid fixes that never
// attempted the gate (Fallback == "") leave it unchanged.
func (g *GatePolicy) Observe(res *Result) {
	if g.inflate < 1 {
		g.inflate = 1
	}
	switch {
	case res == nil:
	case res.Gated:
		g.inflate /= 2
		if g.inflate < 1 {
			g.inflate = 1
		}
	case res.Fallback != "":
		f := g.InflateOnFallback
		if f <= 1 {
			f = 2
		}
		max := g.MaxInflate
		if max < 1 {
			max = 8
		}
		g.inflate *= f
		if g.inflate > max {
			g.inflate = max
		}
	}
}

// LocateOptions parameterizes LocateOpts.
type LocateOptions struct {
	// Ref is the reference anchor (LocateRef semantics).
	Ref int
	// Prior, when non-nil, enables the gated coarse-to-fine search
	// bounded by the tracker's confidence ellipse. Nil runs the plain
	// full-grid path.
	Prior *Prior
}

// LocateOpts runs the BLoc pipeline with serving-plane options: an
// elected reference anchor and an optional tracker prior. With a prior
// it attempts the gated coarse-to-fine search and transparently falls
// back to the full grid when the gate refuses (Result.Fallback names the
// trigger); without one it is exactly LocateRef.
func (e *Engine) LocateOpts(s *csi.Snapshot, opts LocateOptions) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid snapshot: %w", err)
	}
	if opts.Ref < 0 || opts.Ref >= s.NumAnchors() {
		return nil, fmt.Errorf("core: reference anchor %d out of range [0,%d)", opts.Ref, s.NumAnchors())
	}
	box := e.getAlpha(s.NumBands(), s.NumAnchors(), s.NumAntennas())
	defer e.putAlpha(box)
	a := e.correctInto(s, opts.Ref, box)
	if opts.Prior == nil {
		return e.locateAlpha(a, bestByScore)
	}
	if err := e.checkAlpha(a); err != nil {
		return nil, err
	}
	res, reason := e.locateGated(a, opts.Prior)
	if reason == "" {
		return res, nil
	}
	switch reason {
	case FallbackDisagree:
		e.statFallbackDisagree.Add(1)
	case FallbackLowConf:
		e.statFallbackLowConf.Add(1)
	default:
		e.statFallbackNoPeaks.Add(1)
	}
	res, err := e.locateAlpha(a, bestByScore)
	if res != nil {
		res.Fallback = reason
	}
	return res, err
}

// gatedTables holds the precomputed coarse and tiled projection tables
// of the gated search for one reference anchor. Immutable after
// construction.
type gatedTables struct {
	cnx, cny int // coarse XY grid dims (every CoarseStep-th cell)
	cT, cD   int // decimated polar dims
	tnx, tny int // refinement tiling dims (TileCells edge)

	coarse []coarseProj  // per anchor
	tiles  []anchorTiles // per anchor
	bytes  int
}

// coarseProj maps each in-range coarse XY cell of one anchor to its
// decimated polar sources: the nearest decimated θ row, and a two-tap
// linear interpolation between adjacent decimated Δ columns (src and
// src+1, weighted w). The Δ magnitude profile is smooth (see
// polar32.go), so interpolating Δ lets the coarse pass halve its Δ
// sample count without widening the undershoot that SelectSafety must
// absorb; θ stays nearest-row, which dominates the residual undershoot.
type coarseProj struct {
	xy  []int32   // coarse XY index (ciy*cnx + cix)
	src []int32   // low decimated polar tap (ct*cD + cd); src+1 in-row
	w   []float32 // Δ interpolation weight of the src+1 tap
	// dLo/dHi give, per decimated θ row, the half-open decimated-Δ span
	// any coarse cell samples; rows nobody samples have dLo >= dHi.
	dLo, dHi []int32
}

// anchorTiles regroups one anchor's full-resolution projection cells
// (anchorProj.cells) by refinement tile, in SoA float32 lanes: tile ti's
// cells occupy lane indices [off[ti], off[ti+1]). tLo/tHi and dLo/dHi
// bound, per tile, the polar rows and Δ columns the tile's cells sample
// (half-open), so the refinement kernel fills only what the selected
// tiles will read.
type anchorTiles struct {
	off                []int32
	tLo, tHi, dLo, dHi []int32

	xy                 []int32
	i00, i10, i01, i11 []int32
	w00, w10, w01, w11 []float32
}

// gatedFor returns the gated tables for the given reference anchor,
// building and caching on first use (same pattern as projections).
func (e *Engine) gatedFor(ref int) *gatedTables {
	e.gatedMu.RLock()
	gt, ok := e.gatedSets[ref]
	e.gatedMu.RUnlock()
	if ok {
		return gt
	}
	e.gatedMu.Lock()
	defer e.gatedMu.Unlock()
	if gt, ok := e.gatedSets[ref]; ok {
		return gt
	}
	gt = e.buildGatedFor(ref)
	if e.gatedSets == nil {
		e.gatedSets = make(map[int]*gatedTables)
	}
	e.gatedSets[ref] = gt
	return gt
}

// buildGatedFor derives the coarse nearest-sample tables from the
// deployment geometry and regroups the existing full-resolution
// projection tables by tile.
func (e *Engine) buildGatedFor(ref int) *gatedTables {
	g := &e.cfg.Gate
	cs, ts, ds, tc := g.CoarseStep, g.CoarseThetaStep, g.CoarseDeltaStep, g.TileCells
	T, D := len(e.thetas), len(e.deltas)
	gt := &gatedTables{
		cnx: (e.nx + cs - 1) / cs, cny: (e.ny + cs - 1) / cs,
		cT: (T + ts - 1) / ts, cD: (D + ds - 1) / ds,
		tnx: (e.nx + tc - 1) / tc, tny: (e.ny + tc - 1) / tc,
	}

	tStep := e.thetas[1] - e.thetas[0]
	dStep := e.deltas[1] - e.deltas[0]
	tMin, tMax := e.thetas[0], e.thetas[len(e.thetas)-1]
	dMin, dMax := e.deltas[0], e.deltas[len(e.deltas)-1]
	master0 := e.anchors[ref].Antenna(0)

	gt.coarse = make([]coarseProj, len(e.anchors))
	for i, arr := range e.anchors {
		cp := &gt.coarse[i]
		cp.dLo = make([]int32, gt.cT)
		cp.dHi = make([]int32, gt.cT)
		for ct := range cp.dLo {
			cp.dLo[ct] = int32(gt.cD)
		}
		ant0 := arr.Antenna(0)
		for ciy := 0; ciy < gt.cny; ciy++ {
			for cix := 0; cix < gt.cnx; cix++ {
				p := e.CellCenter(cix*cs, ciy*cs)
				theta := arr.AngleTo(p)
				delta := p.Dist(ant0) - p.Dist(master0)
				if theta < tMin || theta > tMax || delta < dMin || delta > dMax {
					continue
				}
				ct := int((theta-tMin)/tStep/float64(ts) + 0.5)
				if ct > gt.cT-1 {
					ct = gt.cT - 1
				}
				fd := (delta - dMin) / dStep / float64(ds)
				cd := int(fd)
				w := float32(fd - float64(cd))
				// Keep both taps inside the row; past the last sample
				// pair the low tap is held and the weight saturates.
				if cd > gt.cD-2 {
					cd = gt.cD - 2
					w = 1
					if cd < 0 { // degenerate single-column grid
						cd, w = 0, 0
					}
				}
				cdHi := cd + 1
				if cdHi > gt.cD-1 {
					cdHi = gt.cD - 1
				}
				cp.xy = append(cp.xy, int32(ciy*gt.cnx+cix))
				cp.src = append(cp.src, int32(ct*gt.cD+cd))
				cp.w = append(cp.w, w)
				if int32(cd) < cp.dLo[ct] {
					cp.dLo[ct] = int32(cd)
				}
				if int32(cdHi+1) > cp.dHi[ct] {
					cp.dHi[ct] = int32(cdHi + 1)
				}
			}
		}
	}

	projs := e.projections(ref)
	nt := gt.tnx * gt.tny
	gt.tiles = make([]anchorTiles, len(e.anchors))
	for i := range projs {
		cells := projs[i].cells
		at := &gt.tiles[i]
		at.off = make([]int32, nt+1)
		at.tLo, at.tHi = make([]int32, nt), make([]int32, nt)
		at.dLo, at.dHi = make([]int32, nt), make([]int32, nt)
		for ti := range at.tLo {
			at.tLo[ti], at.dLo[ti] = int32(T), int32(D)
		}
		for ci := range cells {
			at.off[e.tileOf(int(cells[ci].xy), gt.tnx)+1]++
		}
		for ti := 0; ti < nt; ti++ {
			at.off[ti+1] += at.off[ti]
		}
		n := len(cells)
		at.xy = make([]int32, n)
		at.i00, at.i10 = make([]int32, n), make([]int32, n)
		at.i01, at.i11 = make([]int32, n), make([]int32, n)
		at.w00, at.w10 = make([]float32, n), make([]float32, n)
		at.w01, at.w11 = make([]float32, n), make([]float32, n)
		cursor := make([]int32, nt)
		copy(cursor, at.off[:nt])
		for ci := range cells {
			c := &cells[ci]
			ti := e.tileOf(int(c.xy), gt.tnx)
			k := cursor[ti]
			cursor[ti]++
			at.xy[k] = c.xy
			at.i00[k], at.i10[k], at.i01[k], at.i11[k] = c.i00, c.i10, c.i01, c.i11
			at.w00[k], at.w10[k] = float32(c.w00), float32(c.w10)
			at.w01[k], at.w11[k] = float32(c.w01), float32(c.w11)
			// Polar bounding box: i00 is the (low θ, low Δ) corner and i11
			// the (high θ, high Δ) corner by construction.
			t0, t1 := c.i00/int32(D), c.i11/int32(D)
			d0, d1 := c.i00%int32(D), c.i11%int32(D)
			if t0 < at.tLo[ti] {
				at.tLo[ti] = t0
			}
			if t1+1 > at.tHi[ti] {
				at.tHi[ti] = t1 + 1
			}
			if d0 < at.dLo[ti] {
				at.dLo[ti] = d0
			}
			if d1+1 > at.dHi[ti] {
				at.dHi[ti] = d1 + 1
			}
		}
	}

	for i := range gt.coarse {
		cp := &gt.coarse[i]
		gt.bytes += (len(cp.xy) + len(cp.src) + len(cp.w) + len(cp.dLo) + len(cp.dHi)) * 4
		at := &gt.tiles[i]
		gt.bytes += (len(at.off) + 5*nt) * 4 // off + four bbox lanes
		gt.bytes += len(at.xy) * 4 * 9       // nine 4-byte SoA lanes
	}
	e.statTableBytes.Add(uint64(gt.bytes))
	return gt
}

// tileOf maps a full-resolution XY cell index to its refinement tile.
func (e *Engine) tileOf(xy, tnx int) int {
	tc := e.cfg.Gate.TileCells
	return (xy / e.nx / tc * tnx) + (xy % e.nx / tc)
}

// locateGated attempts one prior-gated coarse-to-fine fix on checked,
// corrected channels. It returns (result, "") on success, or (nil,
// reason) when the gate refuses and the caller must fall back.
func (e *Engine) locateGated(a *Alpha, prior *Prior) (*Result, string) {
	g := &e.cfg.Gate
	ps := e.planesFor(a.Freqs)
	gt := e.gatedFor(a.Ref)
	T, D := len(e.thetas), len(e.deltas)
	I := a.NumAnchors()

	r := e.getGatedRun()
	defer e.putGatedRun(r)
	r.active = r.active[:0]
	for i := 0; i < I; i++ {
		if a.PresentBands(i) > 0 {
			r.active = append(r.active, i)
		}
	}
	if len(r.active) == 0 {
		return nil, FallbackNoPeaks
	}

	// ---- Stage 1: coarse decimated pass. ----
	nc := gt.cnx * gt.cny
	r.ccomb = growF32(r.ccomb, nc)
	clear(r.ccomb)
	r.cpolar = growF32(r.cpolar, gt.cT*gt.cD+1)
	r.cpolar[gt.cT*gt.cD] = 0 // headroom slot for the saturated last Δ tap
	r.acc = growF32(r.acc, 2*D)
	r.cmax = growF64(r.cmax, I)
	r.avp = growC128(r.avp, a.NumBands()*a.NumAntennas())
	for _, i := range r.active {
		cp := &gt.coarse[i]
		bfCoeffs(ps, a, i, r.avp)
		e.coarsePolarFill32(ps, cp, a, i, gt.cT, gt.cD, r.cpolar, r.acc, r.avp)
		r.cvals = growF32(r.cvals, len(cp.src))
		var m float32
		for c, src := range cp.src {
			v := r.cpolar[src]
			v += (r.cpolar[src+1] - v) * cp.w[c]
			r.cvals[c] = v
			if v > m {
				m = v
			}
		}
		r.cmax[i] = float64(m)
		inv := float32(1)
		if e.cfg.NormalizePerAnchor && m > 0 {
			inv = 1 / m
		}
		for c, xy := range cp.xy {
			r.ccomb[xy] += r.cvals[c] * inv
		}
	}
	var cmax float32
	argc := -1
	for c, v := range r.ccomb {
		if v > cmax {
			cmax, argc = v, c
		}
	}
	if argc < 0 || !(cmax > 0) {
		return nil, FallbackNoPeaks
	}
	coarseEst := e.CellCenter(argc%gt.cnx*g.CoarseStep, argc/gt.cnx*g.CoarseStep)
	if !prior.Contains(coarseEst, g.DisagreeMarginM) {
		return nil, FallbackDisagree
	}

	// ---- Tile selection: prior-compatible coarse peaks, one-ring dilation. ----
	// A tile is value-selected when it contains a coarse local maximum
	// at ≥ SelectSafety·PeakMinFrac of the coarse global maximum — the
	// decimated mirror of FindPeaks' acceptance rule, with SelectSafety
	// absorbing decimation undershoot — AND that maximum is compatible
	// with the prior (inside the margin-grown ellipse). This is where
	// the tracker actually prunes work: the multipath surface carries
	// reflection peaks all over the room, but for a tracked tag every
	// peak outside the confidence ellipse is one the downstream track
	// gate would reject anyway, so it is never refined or scored. The
	// dominant peak's compatibility was just established by the
	// disagree check, so at least one tile is always selected.
	nt := gt.tnx * gt.tny
	r.sel = growBools(r.sel, nt)
	clear(r.sel)
	thr := float32(g.SelectSafety*e.cfg.PeakMinFrac) * cmax
	nSel := 0
	for c, v := range r.ccomb {
		if v < thr {
			continue
		}
		cix, ciy := c%gt.cnx, c/gt.cnx
		if !prior.Contains(e.CellCenter(cix*g.CoarseStep, ciy*g.CoarseStep), g.DisagreeMarginM) {
			continue
		}
		localMax := true
		for dy := -1; dy <= 1 && localMax; dy++ {
			for dx := -1; dx <= 1; dx++ {
				qx, qy := cix+dx, ciy+dy
				if qx < 0 || qx >= gt.cnx || qy < 0 || qy >= gt.cny {
					continue
				}
				if r.ccomb[qy*gt.cnx+qx] > v {
					localMax = false
					break
				}
			}
		}
		if !localMax {
			continue
		}
		ti := e.tileOf((ciy*g.CoarseStep)*e.nx+cix*g.CoarseStep, gt.tnx)
		if !r.sel[ti] {
			r.sel[ti] = true
			nSel++
		}
	}
	if float64(nSel) > g.MaxTileFrac*float64(nt) {
		return nil, FallbackLowConf
	}
	// Peak-bearing tiles get a one-tile ring: it absorbs the coarse→full
	// argmax shift and keeps the Eq. 18 entropy window (±EntropyWindow/2
	// · EntropyStride cells < TileCells) fully painted around any
	// candidate.
	r.dil = growBools(r.dil, nt)
	clear(r.dil)
	refined := 0
	for ti, on := range r.sel {
		if !on {
			continue
		}
		tix, tiy := ti%gt.tnx, ti/gt.tnx
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				qx, qy := tix+dx, tiy+dy
				if qx < 0 || qx >= gt.tnx || qy < 0 || qy >= gt.tny {
					continue
				}
				if !r.dil[qy*gt.tnx+qx] {
					r.dil[qy*gt.tnx+qx] = true
					refined++
				}
			}
		}
	}
	// Tiles the prior ellipse touches are refined too (undilated — they
	// carry no coarse peak, they just keep the tag's plausible
	// neighborhood painted): tile-vs-ellipse intersection is
	// approximated conservatively by growing the ellipse by the tile
	// half-diagonal.
	halfDiag := float64(g.TileCells) * e.cfg.CellM * math.Sqrt2 / 2
	for tiy := 0; tiy < gt.tny; tiy++ {
		for tix := 0; tix < gt.tnx; tix++ {
			center := e.CellCenter(tix*g.TileCells+g.TileCells/2, tiy*g.TileCells+g.TileCells/2)
			ti := tiy*gt.tnx + tix
			if !r.dil[ti] && prior.Contains(center, halfDiag) {
				r.dil[ti] = true
				refined++
			}
		}
	}

	// ---- Stage 2: full-resolution refinement of the selected tiles. ----
	combined := dsp.NewGrid(e.nx, e.ny)
	r.polar = growF32(r.polar, T*D)
	r.rowLo = growI32(r.rowLo, T)
	r.rowHi = growI32(r.rowHi, T)
	for _, i := range r.active {
		at := &gt.tiles[i]
		for t := range r.rowLo {
			r.rowLo[t], r.rowHi[t] = int32(D), 0
		}
		painted := false
		for ti, on := range r.dil {
			if !on || at.off[ti+1] == at.off[ti] {
				continue
			}
			painted = true
			for t := at.tLo[ti]; t < at.tHi[ti]; t++ {
				if at.dLo[ti] < r.rowLo[t] {
					r.rowLo[t] = at.dLo[ti]
				}
				if at.dHi[ti] > r.rowHi[t] {
					r.rowHi[t] = at.dHi[ti]
				}
			}
		}
		if !painted {
			continue
		}
		bfCoeffs(ps, a, i, r.avp)
		e.polarFill32(ps, a, i, r.polar, r.rowLo, r.rowHi, r.acc, r.avp)

		// Paint the selected tiles, collecting the painted maximum for
		// the deferred normalization.
		r.vals = r.vals[:0]
		var pm float32
		for ti, on := range r.dil {
			if !on {
				continue
			}
			lo, hi := at.off[ti], at.off[ti+1]
			for c := lo; c < hi; c++ {
				v := r.polar[at.i00[c]]*at.w00[c] + r.polar[at.i10[c]]*at.w10[c] +
					r.polar[at.i01[c]]*at.w01[c] + r.polar[at.i11[c]]*at.w11[c]
				r.vals = append(r.vals, v)
				if v > pm {
					pm = v
				}
			}
		}
		// The anchor's true map maximum may lie outside the selected
		// tiles; the coarse global maximum (an exact float32 evaluation
		// of the same surface at decimated points) recovers it to within
		// decimation error, keeping the per-anchor weighting close to
		// the full-grid oracle's.
		denom := r.cmax[i]
		if float64(pm) > denom {
			denom = float64(pm)
		}
		inv := 1.0
		if e.cfg.NormalizePerAnchor && denom > 0 {
			inv = 1 / denom
		}
		n := 0
		cd := combined.Data
		for ti, on := range r.dil {
			if !on {
				continue
			}
			lo, hi := at.off[ti], at.off[ti+1]
			for c := lo; c < hi; c++ {
				cd[at.xy[c]] += float64(r.vals[n]) * inv
				n++
			}
		}
	}

	// Painting only a subset of tiles creates artificial cliffs at the
	// selection boundary, and a background cell on the high side of a
	// cliff is a local maximum the full grid would never report. True
	// candidates sit inside a value tile (± the coarse→full shift), a
	// full ring away from any boundary — so any candidate whose 3×3
	// neighborhood leaves the refined region is a truncation artifact
	// and is dropped before Eq. 18 gets to score it.
	// The surface is zero outside the selected tiles, so the peak scan
	// only needs their bounding rect (candidatesIn): same peaks, a
	// fraction of the full-grid scan.
	tc := g.TileCells
	minTx, minTy, maxTx, maxTy := gt.tnx, gt.tny, -1, -1
	for ti, on := range r.dil {
		if !on {
			continue
		}
		tix, tiy := ti%gt.tnx, ti/gt.tnx
		if tix < minTx {
			minTx = tix
		}
		if tix > maxTx {
			maxTx = tix
		}
		if tiy < minTy {
			minTy = tiy
		}
		if tiy > maxTy {
			maxTy = tiy
		}
	}
	cands := e.candidatesIn(combined, minTx*tc, minTy*tc, (maxTx+1)*tc, (maxTy+1)*tc)
	kept := cands[:0]
	for _, c := range cands {
		fx, fy := e.cellOf(c.Loc)
		ix, iy := int(fx+0.5), int(fy+0.5)
		interior := true
		for dy := -1; dy <= 1 && interior; dy++ {
			for dx := -1; dx <= 1; dx++ {
				qx, qy := ix+dx, iy+dy
				if qx < 0 || qx >= e.nx || qy < 0 || qy >= e.ny {
					continue
				}
				if !r.dil[e.tileOf(qy*e.nx+qx, gt.tnx)] {
					interior = false
					break
				}
			}
		}
		if interior {
			kept = append(kept, c)
		}
	}
	best, ok := bestByScore(kept)
	if !ok {
		return nil, FallbackNoPeaks
	}
	e.statFixes.Add(1)
	e.statGatedFixes.Add(1)
	e.statTilesRefined.Add(uint64(refined))
	e.statTilesTotal.Add(uint64(nt))
	return &Result{
		Estimate:     best.Loc,
		Candidates:   kept,
		Likelihood:   combined,
		Gated:        true,
		TilesRefined: refined,
		TilesTotal:   nt,
	}, ""
}
