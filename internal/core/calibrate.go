package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/rfsim"
)

// Array self-calibration (extension beyond the paper): real arrays carry
// static per-antenna phase errors (cable mismatch, mutual coupling) that
// bias every angle estimate. Because the anchors' mutual geometry is
// known a priori — the same fact §5.3 uses for d^{i0}_{00} — each anchor
// can calibrate itself from another anchor's transmissions: the expected
// inter-antenna phase for a transmitter at a known position is pure
// geometry, so the residual is the calibration error.

// Calibration holds per-anchor, per-antenna correction rotors: multiply a
// measured channel by Rotors[i][j] to undo antenna j's static error
// (relative to antenna 0, whose rotor is 1 — a common per-anchor phase is
// invisible to the pipeline).
type Calibration struct {
	Rotors [][]complex128
}

// EstimateCalibration computes the calibration from reference
// measurements: meas[k][i][j] is the channel from a transmitter at
// txPos[i] to antenna j of anchor i on band k (frequency freqs[k]). LO
// offsets are common across an anchor's antennas and cancel in the j/0
// ratios; the per-band residuals are averaged circularly across bands to
// suppress multipath on the reference links.
func EstimateCalibration(anchors []geom.Array, txPos []geom.Point, freqs []float64, meas [][][]complex128) (*Calibration, error) {
	I := len(anchors)
	if len(txPos) != I {
		return nil, fmt.Errorf("core: %d tx positions for %d anchors", len(txPos), I)
	}
	if len(meas) == 0 || len(meas) != len(freqs) {
		return nil, fmt.Errorf("core: %d measurement bands for %d frequencies", len(meas), len(freqs))
	}
	cal := &Calibration{Rotors: make([][]complex128, I)}
	for i := 0; i < I; i++ {
		J := anchors[i].N
		rotors := make([]complex128, J)
		rotors[0] = 1
		for j := 1; j < J; j++ {
			phases := make([]float64, 0, len(freqs))
			for k := range freqs {
				if i >= len(meas[k]) || j >= len(meas[k][i]) {
					return nil, fmt.Errorf("core: measurement missing for anchor %d antenna %d band %d", i, j, k)
				}
				m0, mj := meas[k][i][0], meas[k][i][j]
				// Zero measurements mark dropped reference links; denormal
				// or non-finite ones would turn the mj/m0 ratio into Inf or
				// NaN and poison the circular mean, so they are skipped the
				// same way.
				if !finiteC(m0) || !finiteC(mj) ||
					cmplx.Abs(m0) < refToneFloor || cmplx.Abs(mj) < refToneFloor {
					continue
				}
				// Expected geometric ratio between antenna j and 0.
				w := 2 * math.Pi * freqs[k] / rfsim.SpeedOfLight
				dj := txPos[i].Dist(anchors[i].Antenna(j))
				d0 := txPos[i].Dist(anchors[i].Antenna(0))
				expected := cmplx.Rect(1, -w*(dj-d0))
				// Residual rotation = measured ratio / expected ratio; its
				// phase is antenna j's error relative to antenna 0.
				residual := (mj / m0) / expected
				if !finiteC(residual) {
					continue
				}
				phases = append(phases, cmplx.Phase(residual))
			}
			if len(phases) == 0 {
				return nil, fmt.Errorf("core: no usable reference measurements for anchor %d antenna %d", i, j)
			}
			mean, resultant := dsp.CircularMean(phases)
			if resultant < 0.3 {
				return nil, fmt.Errorf("core: calibration for anchor %d antenna %d is unstable (resultant %.2f)", i, j, resultant)
			}
			// Correction rotor undoes the error.
			rotors[j] = cmplx.Rect(1, -mean)
		}
		cal.Rotors[i] = rotors
	}
	return cal, nil
}

// Apply returns a copy of the snapshot with the calibration applied to
// every tag-side channel (master-side channels are measured on antenna 0,
// whose rotor is 1 by construction). The calibration is agnostic to the
// α reference index: rotors are relative to each anchor's own antenna 0,
// and CorrectRef multiplies whole rows by factors built from antenna-0
// tones only, so calibrating first is correct for any elected reference.
// Presence masks of partial snapshots are carried over unchanged.
func (c *Calibration) Apply(s *csi.Snapshot) (*csi.Snapshot, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(c.Rotors) {
		return nil, fmt.Errorf("core: calibration has %d anchors, snapshot %d", len(c.Rotors), s.NumAnchors())
	}
	out := csi.NewSnapshot(s.Bands, s.NumAnchors(), s.NumAntennas())
	for k := range s.Bands {
		for i := range s.Tag[k] {
			if len(c.Rotors[i]) < len(s.Tag[k][i]) {
				return nil, fmt.Errorf("core: calibration for anchor %d covers %d antennas, snapshot has %d",
					i, len(c.Rotors[i]), len(s.Tag[k][i]))
			}
			for j := range s.Tag[k][i] {
				out.Tag[k][i][j] = s.Tag[k][i][j] * c.Rotors[i][j]
			}
			out.Master[k][i] = s.Master[k][i]
		}
	}
	if s.Have != nil {
		have := make([][]bool, len(s.Have))
		for k := range s.Have {
			have[k] = append([]bool(nil), s.Have[k]...)
		}
		out.Have = have
	}
	return out, nil
}

// MaxErrorDeg returns the largest correction magnitude in degrees — a
// health indicator for how miscalibrated the deployment was.
func (c *Calibration) MaxErrorDeg() float64 {
	var worst float64
	for _, anchor := range c.Rotors {
		for _, r := range anchor {
			if p := math.Abs(cmplx.Phase(r)); p > worst {
				worst = p
			}
		}
	}
	return worst * 180 / math.Pi
}
