package core

import (
	"math"
	"math/cmplx"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// Reference-failover golden tests: the re-referenced α path (CorrectRef,
// the pooled correctInto, the ref-parameterized kernels and projection
// tables) must agree with the reference oracle within 1e-9 for EVERY
// reference index, not just the paper's hard-wired 0, and the finite
// guard must keep NaN/Inf and denormal reference tones out of the grids.

// TestOptimizedKernelsMatchReferenceAllRefs runs the full kernel-parity
// sweep (polar likelihood, projections, spectra, combined map) once per
// non-zero reference index.
func TestOptimizedKernelsMatchReferenceAllRefs(t *testing.T) {
	d, err := testbed.Paper(47)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	s := d.Sounding(geom.Pt(0.9, -1.6))
	for ref := 1; ref < s.NumAnchors(); ref++ {
		a, err := CorrectRef(s, ref)
		if err != nil {
			t.Fatal(err)
		}
		if a.Ref != ref {
			t.Fatalf("alpha Ref = %d, want %d", a.Ref, ref)
		}
		checkKernelParity(t, e, a)
	}
}

// TestPooledCorrectMatchesCorrectAllRefs pins correctInto to CorrectRef
// bit for bit for every reference index, on full and masked snapshots.
func TestPooledCorrectMatchesCorrectAllRefs(t *testing.T) {
	d, err := testbed.Paper(48)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	full := d.Sounding(geom.Pt(-1.4, 0.6))
	masked := d.Sounding(geom.Pt(0.3, 2.0)).MaskedCopy()
	masked.MaskMissing(4, 2)
	masked.MaskMissing(9, 0)
	for _, s := range []*csi.Snapshot{full, masked} {
		for ref := 0; ref < s.NumAnchors(); ref++ {
			want, err := CorrectRef(s, ref)
			if err != nil {
				t.Fatal(err)
			}
			box := e.getAlpha(s.NumBands(), s.NumAnchors(), s.NumAntennas())
			got := e.correctInto(s, ref, box)
			if got.Ref != want.Ref {
				t.Fatalf("ref %d: Ref mismatch %d != %d", ref, got.Ref, want.Ref)
			}
			if (got.Have == nil) != (want.Have == nil) {
				t.Fatalf("ref %d: Have nil mismatch", ref)
			}
			for k := range want.Values {
				for i := range want.Values[k] {
					if want.Have != nil && got.Have[k][i] != want.Have[k][i] {
						t.Fatalf("ref %d: Have[%d][%d] mismatch", ref, k, i)
					}
					for j := range want.Values[k][i] {
						if got.Values[k][i][j] != want.Values[k][i][j] {
							t.Fatalf("ref %d: alpha[%d][%d][%d]: got %v want %v",
								ref, k, i, j, got.Values[k][i][j], want.Values[k][i][j])
						}
					}
				}
			}
			e.putAlpha(box)
		}
	}
}

// TestLocateRefMatchesReferencePipelineAllRefs checks the end-to-end
// pooled fix path per reference: the likelihood surface LocateRef reports
// must match LikelihoodReference's for the same reference.
func TestLocateRefMatchesReferencePipelineAllRefs(t *testing.T) {
	d, err := testbed.Paper(49)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	s := d.Sounding(geom.Pt(1.6, 1.1))
	for ref := 1; ref < s.NumAnchors(); ref++ {
		res, err := e.LocateRef(s, ref)
		if err != nil {
			t.Fatal(err)
		}
		a, err := CorrectRef(s, ref)
		if err != nil {
			t.Fatal(err)
		}
		refCombined, _ := e.LikelihoodReference(a)
		requireGridsEqual(t, "LocateRef likelihood surface", res.Likelihood, refCombined)
	}
}

// TestCorrectRefMatchesCorrectAtZero pins the relaxed formula to the
// original Eq. 10 path at reference 0: Master[k][0] is 1 by construction,
// so the reference factor collapses to ĥ*_00 exactly.
func TestCorrectRefMatchesCorrectAtZero(t *testing.T) {
	d, err := testbed.Paper(50)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Sounding(geom.Pt(-0.8, -0.9))
	a0, err := Correct(s)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := CorrectRef(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a0.Values {
		for i := range a0.Values[k] {
			for j := range a0.Values[k][i] {
				if a0.Values[k][i][j] != ar.Values[k][i][j] {
					t.Fatalf("alpha[%d][%d][%d]: Correct %v != CorrectRef(0) %v",
						k, i, j, a0.Values[k][i][j], ar.Values[k][i][j])
				}
			}
		}
	}
}

// TestLocateRefSurvivesDeadMaster is the failover claim in miniature:
// with every row of anchor 0 masked (dead master daemon), ref-0
// localization has nothing to correct against, while re-referencing to a
// healthy anchor recovers an accurate fix from the surviving rows.
func TestLocateRefSurvivesDeadMaster(t *testing.T) {
	d, err := testbed.Paper(51)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(0.7, -1.1)
	s := d.Sounding(tag).MaskedCopy()
	for k := 0; k < s.NumBands(); k++ {
		s.MaskMissing(k, 0)
	}
	if _, err := e.Locate(s); err == nil {
		t.Fatal("ref-0 localization should fail with every master row missing")
	}
	res, err := e.LocateRef(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Three surviving anchors in multipath: tolerate a coarser fix than
	// the full-deployment median, but it must stay in the right corner.
	if d := res.Estimate.Dist(tag); d > 0.8 {
		t.Fatalf("re-referenced fix is %.2f m off (estimate %v, truth %v)", d, res.Estimate, tag)
	}
}

// TestCorrectRefFiniteGuard feeds NaN, Inf and denormal tones through the
// corrected-channel paths and asserts the poisoned rows are masked (not
// propagated) on both the allocating and the pooled path.
func TestCorrectRefFiniteGuard(t *testing.T) {
	d, err := testbed.Paper(52)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	s := d.Sounding(geom.Pt(1.2, 0.4))
	s.Tag[2][1][3] = complex(math.NaN(), 0)  // corrupt tone in anchor 1, band 2
	s.Master[5][2] = complex(math.Inf(1), 0) // corrupt inter-anchor tone
	s.Tag[7][0][0] = complex(1e-300, 0)      // denormal reference tone: band 7 unusable at ref 0
	for _, path := range []string{"alloc", "pooled"} {
		var a *Alpha
		if path == "alloc" {
			var err error
			a, err = CorrectRef(s, 0)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			box := e.getAlpha(s.NumBands(), s.NumAnchors(), s.NumAntennas())
			defer e.putAlpha(box)
			a = e.correctInto(s, 0, box)
		}
		if a.Have == nil {
			t.Fatalf("%s: guard should materialize a mask", path)
		}
		if a.Present(2, 1) {
			t.Fatalf("%s: NaN row should be masked", path)
		}
		if a.Present(5, 2) {
			t.Fatalf("%s: Inf row should be masked", path)
		}
		for i := 0; i < a.NumAnchors(); i++ {
			if a.Present(7, i) {
				t.Fatalf("%s: denormal reference tone should mask band 7 anchor %d", path, i)
			}
		}
		for k := range a.Values {
			for i := range a.Values[k] {
				for j, v := range a.Values[k][i] {
					if cmplx.IsNaN(v) || cmplx.IsInf(v) {
						t.Fatalf("%s: alpha[%d][%d][%d] = %v leaked past the guard", path, k, i, j, v)
					}
				}
			}
		}
	}
	// The poisoned snapshot must still localize — and never emit NaN.
	res, err := e.Locate(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate.X) || math.IsNaN(res.Estimate.Y) {
		t.Fatalf("fix is NaN: %v", res.Estimate)
	}
	if st := e.Stats(); st.RowsMasked == 0 {
		t.Fatal("guard trips should be counted in Stats().RowsMasked")
	}
}

// TestLocateRSSISkipsCorruptAnchors: the RSSI fallback must ignore
// anchors whose magnitudes are NaN/zero instead of inverting them into
// Inf ranges.
func TestLocateRSSISkipsCorruptAnchors(t *testing.T) {
	env := testbed.CleanEnvironment(53)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	s := d.Sounding(geom.Pt(0.4, 0.9))
	for k := range s.Tag {
		for j := range s.Tag[k][2] {
			s.Tag[k][2][j] = complex(math.NaN(), math.NaN())
		}
	}
	res, err := e.LocateRSSI(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate.X) || math.IsNaN(res.Estimate.Y) {
		t.Fatalf("RSSI fix is NaN: %v", res.Estimate)
	}
	// Zero out a second anchor entirely: only 2 usable remain -> error,
	// not an Inf-range grid search.
	for k := range s.Tag {
		for j := range s.Tag[k][3] {
			s.Tag[k][3][j] = 0
		}
	}
	if _, err := e.LocateRSSI(s); err == nil {
		t.Fatal("RSSI with 2 usable anchors should fail, not fabricate a fix")
	}
}
