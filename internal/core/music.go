package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/rfsim"
)

// MUSIC super-resolution angle estimation — the algorithm family behind
// the ArrayTrack/SpotFi systems the paper baselines against (§9.3). It is
// provided both as a research tool (the paper's conclusion hopes BLoc
// serves as "a tool … to test out CSI-based localization algorithms")
// and as a stronger AoA baseline: where the Bartlett spectrum of Eq. 15
// merges paths within a beamwidth, MUSIC separates any paths the
// J-antenna array can rank.

// MUSICSpectrum computes the MUSIC pseudo-spectrum over the engine's θ
// grid for one anchor: the per-band channel vectors across antennas act
// as snapshots for the spatial covariance, whose noise subspace (all but
// numPaths dominant eigenvectors) is orthogonal to the steering vectors
// of true arrival directions. numPaths must be in [1, J−1].
func (e *Engine) MUSICSpectrum(freqs []float64, values [][][]complex128, anchor, numPaths int) ([]float64, error) {
	K := len(values)
	if K == 0 {
		return nil, fmt.Errorf("core: no bands for MUSIC")
	}
	J := len(values[0][anchor])
	if numPaths < 1 || numPaths >= J {
		return nil, fmt.Errorf("core: MUSIC paths %d outside [1,%d]", numPaths, J-1)
	}
	// Spatial covariance across band snapshots. Each band's LO offset is
	// a common rotation of the whole vector and cancels in x·xᴴ, so no
	// phase correction is needed (same argument as Eq. 15).
	R := make([][]complex128, J)
	for i := range R {
		R[i] = make([]complex128, J)
	}
	for k := 0; k < K; k++ {
		x := values[k][anchor]
		for i := 0; i < J; i++ {
			for j := 0; j < J; j++ {
				R[i][j] += x[i] * cmplx.Conj(x[j])
			}
		}
	}
	inv := complex(1/float64(K), 0)
	for i := range R {
		for j := range R {
			R[i][j] *= inv
		}
	}
	P, err := dsp.HermitianNoiseProjector(R, numPaths)
	if err != nil {
		return nil, err
	}
	// Pseudo-spectrum 1/(aᴴ P a). The steering vector must match the
	// *signal* model: with this geometry antenna j sits closer to a
	// target at positive θ by j·l·sinθ, so the received phase advances,
	// a_j(θ) = e^{+ι w j l sinθ}. (Eq. 15's Bartlett sum multiplies by
	// the conjugate compensator instead, hence the opposite sign there.)
	fmid := freqs[len(freqs)/2]
	w := 2 * math.Pi * fmid / rfsim.SpeedOfLight
	l := e.anchors[anchor].Spacing
	out := make([]float64, len(e.thetas))
	a := make([]complex128, J)
	for t, theta := range e.thetas {
		stepS, stepC := math.Sincos(w * l * math.Sin(theta))
		step := complex(stepC, stepS)
		a[0] = 1
		for j := 1; j < J; j++ {
			a[j] = a[j-1] * step
		}
		var quad complex128
		for i := 0; i < J; i++ {
			var acc complex128
			for j := 0; j < J; j++ {
				acc += P[i][j] * a[j]
			}
			quad += cmplx.Conj(a[i]) * acc
		}
		den := real(quad)
		if den < 1e-12 {
			den = 1e-12
		}
		out[t] = 1 / den
	}
	return out, nil
}

// LocateMUSIC is the MUSIC-enhanced AoA baseline: one super-resolved
// bearing per anchor (strongest pseudo-spectrum peak, numPaths = 2),
// triangulated exactly like LocateAoA. It shares AoA's fundamental
// weakness — no distance dimension, so a reflection stronger than the
// direct path still captures the bearing — but resolves closely spaced
// arrivals the Bartlett spectrum merges.
func (e *Engine) LocateMUSIC(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(e.anchors) {
		return nil, fmt.Errorf("core: snapshot has %d anchors, engine %d", s.NumAnchors(), len(e.anchors))
	}
	numPaths := 2
	if s.NumAntennas() <= 2 {
		numPaths = 1
	}
	I := s.NumAnchors()
	active := activeAnchors(s)
	if len(active) < 2 {
		return nil, fmt.Errorf("core: only %d anchors present, need >= 2 for MUSIC", len(active))
	}
	bearings := make([]float64, I)
	for _, i := range active {
		spec, err := e.MUSICSpectrum(s.Freqs, s.Tag, i, numPaths)
		if err != nil {
			return nil, err
		}
		bearings[i] = e.thetas[dsp.ArgMax(spec)]
	}
	grid := dsp.NewGrid(e.nx, e.ny)
	best := math.Inf(1)
	bx, by := 0, 0
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			var res float64
			for _, i := range active {
				d := geom.WrapAngle(e.anchors[i].AngleTo(p) - bearings[i])
				res += d * d
			}
			grid.Set(ix, iy, -res)
			if res < best {
				best, bx, by = res, ix, iy
			}
		}
	}
	return &Result{Estimate: e.CellCenter(bx, by), Likelihood: grid}, nil
}
