package core

import (
	"testing"

	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// Micro-benchmarks for the likelihood kernels, optimized vs reference.
// BenchmarkLocateSingleFix (package bloc) measures the end-to-end fix;
// these isolate the two hot stages the tentpole optimizes.

func benchFixture(b *testing.B) (*Engine, *Alpha) {
	b.Helper()
	d, err := testbed.Paper(7)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(d.Anchors, DefaultConfig(d.Env.Room))
	if err != nil {
		b.Fatal(err)
	}
	a, err := Correct(d.Sounding(geom.Pt(0.8, -1.2)))
	if err != nil {
		b.Fatal(err)
	}
	return e, a
}

func BenchmarkPolarLikelihood(b *testing.B) {
	e, a := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.polarLikelihood(a, 1)
	}
}

func BenchmarkPolarLikelihoodReference(b *testing.B) {
	e, a := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.referencePolarLikelihood(a, 1)
	}
}

func BenchmarkPolarToXY(b *testing.B) {
	e, a := benchFixture(b)
	polar := e.polarLikelihood(a, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.polarToXY(polar, 1, 0)
	}
}

func BenchmarkPolarToXYReference(b *testing.B) {
	e, a := benchFixture(b)
	polar := e.polarLikelihood(a, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.referencePolarToXY(polar, 1, 0)
	}
}

func BenchmarkLikelihood(b *testing.B) {
	e, a := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.likelihoodCombined(a)
	}
}
