package core

import (
	"testing"

	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// Micro-benchmarks for the likelihood kernels, optimized vs reference.
// BenchmarkLocateSingleFix (package bloc) measures the end-to-end fix;
// these isolate the two hot stages the tentpole optimizes.

func benchFixture(b *testing.B) (*Engine, *Alpha) {
	b.Helper()
	d, err := testbed.Paper(7)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(d.Anchors, DefaultConfig(d.Env.Room))
	if err != nil {
		b.Fatal(err)
	}
	a, err := Correct(d.Sounding(geom.Pt(0.8, -1.2)))
	if err != nil {
		b.Fatal(err)
	}
	return e, a
}

func BenchmarkPolarLikelihood(b *testing.B) {
	e, a := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.polarLikelihood(a, 1)
	}
}

func BenchmarkPolarLikelihoodReference(b *testing.B) {
	e, a := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.referencePolarLikelihood(a, 1)
	}
}

func BenchmarkPolarToXY(b *testing.B) {
	e, a := benchFixture(b)
	polar := e.polarLikelihood(a, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.polarToXY(polar, 1, 0)
	}
}

func BenchmarkPolarToXYReference(b *testing.B) {
	e, a := benchFixture(b)
	polar := e.polarLikelihood(a, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.referencePolarToXY(polar, 1, 0)
	}
}

func BenchmarkLikelihood(b *testing.B) {
	e, a := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.likelihoodCombined(a)
	}
}

// BenchmarkGatedFix measures the steady-state tracked fix: a settled
// prior, warm pools and tables. BenchmarkFullGridFix is the same
// snapshot through the full-grid path — the pair is the headline
// speedup of the prior-gated search.
func BenchmarkGatedFix(b *testing.B) {
	d, err := testbed.Paper(1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(d.Anchors, DefaultConfig(d.Env.Room))
	if err != nil {
		b.Fatal(err)
	}
	snap := d.Sounding(geom.Pt(1.2, 0.8))
	full, err := e.Locate(snap)
	if err != nil {
		b.Fatal(err)
	}
	prior := tightPrior(full.Estimate)
	res, err := e.LocateOpts(snap, LocateOptions{Prior: prior})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Gated {
		b.Fatalf("warm-up fix fell back: %q", res.Fallback)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.LocateOpts(snap, LocateOptions{Prior: prior})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Gated {
			b.Fatalf("fix fell back: %q", r.Fallback)
		}
	}
}

func BenchmarkFullGridFix(b *testing.B) {
	d, err := testbed.Paper(1)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(d.Anchors, DefaultConfig(d.Env.Room))
	if err != nil {
		b.Fatal(err)
	}
	snap := d.Sounding(geom.Pt(1.2, 0.8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Locate(snap); err != nil {
			b.Fatal(err)
		}
	}
}
