package core

import (
	"math"
	"testing"

	"bloc/internal/geom"
	"bloc/internal/testbed"
)

// tightPrior is a settled-tracker stand-in: a small isotropic ellipse
// centered on the given point.
func tightPrior(p geom.Point) *Prior {
	return &Prior{Center: p, SemiMajor: 0.5, SemiMinor: 0.5, Theta: 0}
}

// gatedScenarioPoints spans the room: interior points at various ranges
// from the anchors, including cells near the clutter.
var gatedScenarioPoints = []geom.Point{
	geom.Pt(0, 0), geom.Pt(1.2, 0.8), geom.Pt(-1.5, -1.0),
	geom.Pt(0.4, 2.0), geom.Pt(-0.8, 1.4), geom.Pt(1.8, -2.0),
	geom.Pt(-2.0, 2.2), geom.Pt(2.0, 1.5),
}

// TestGatedParityTracked pins the gated path to the full-grid oracle
// across seeded scenarios: with a truthful prior the gated estimate must
// match the full-grid estimate to within grid-cell noise.
func TestGatedParityTracked(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		d, err := testbed.Paper(seed)
		if err != nil {
			t.Fatal(err)
		}
		e := paperEngine(t, d)
		worst := 0.0
		gatedCount := 0
		for _, pt := range gatedScenarioPoints {
			snap := d.Sounding(pt)
			full, err := e.Locate(snap)
			if err != nil {
				t.Fatalf("seed %d %v: full: %v", seed, pt, err)
			}
			// The prior a settled tracker would hold: centered on the
			// (converged) estimate, not the unknowable truth.
			res, err := e.LocateOpts(snap, LocateOptions{Prior: tightPrior(full.Estimate)})
			if err != nil {
				t.Fatalf("seed %d %v: gated: %v", seed, pt, err)
			}
			dist := res.Estimate.Dist(full.Estimate)
			if dist > worst {
				worst = dist
			}
			if res.Gated {
				gatedCount++
				if res.TilesRefined <= 0 || res.TilesRefined > res.TilesTotal {
					t.Errorf("seed %d %v: bad tile counts %d/%d", seed, pt, res.TilesRefined, res.TilesTotal)
				}
				if res.TilesRefined*2 > res.TilesTotal {
					t.Errorf("seed %d %v: gated fix refined %d/%d tiles — not worth gating",
						seed, pt, res.TilesRefined, res.TilesTotal)
				}
			} else if res.Fallback == "" {
				t.Errorf("seed %d %v: non-gated result without a fallback reason", seed, pt)
			}
			// Gated successes must agree to within a couple of cells
			// (float32 rounding can move the argmax across a cell edge);
			// fallbacks run the identical full path and must agree exactly.
			tol := 2.5 * e.Config().CellM
			if !res.Gated {
				tol = 0
			}
			if dist > tol {
				t.Errorf("seed %d %v: gated %v vs full %v (%.3f m apart, gated=%v fb=%q)",
					seed, pt, res.Estimate, full.Estimate, dist, res.Gated, res.Fallback)
			}
		}
		if gatedCount < len(gatedScenarioPoints)*3/4 {
			t.Errorf("seed %d: only %d/%d fixes were gated with a truthful prior",
				seed, gatedCount, len(gatedScenarioPoints))
		}
		t.Logf("seed %d: %d/%d gated, worst disagreement %.3f m", seed, gatedCount, len(gatedScenarioPoints), worst)
	}
}

// TestGatedNilPriorIsFullPath pins track loss: without a prior,
// LocateOpts is exactly LocateRef.
func TestGatedNilPriorIsFullPath(t *testing.T) {
	d, err := testbed.Paper(3)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	snap := d.Sounding(geom.Pt(0.7, -1.1))
	full, err := e.LocateRef(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.LocateOpts(snap, LocateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gated || res.Fallback != "" {
		t.Fatalf("nil prior produced gated=%v fallback=%q", res.Gated, res.Fallback)
	}
	if res.Estimate != full.Estimate {
		t.Fatalf("nil-prior estimate %v != LocateRef %v", res.Estimate, full.Estimate)
	}
}

// TestGatedTeleportFallsBack pins the adversarial case: a confident but
// wrong prior (the tag teleported across the room) must trigger the
// disagree fallback, and the reported fix must be the full-grid one.
func TestGatedTeleportFallsBack(t *testing.T) {
	d, err := testbed.Paper(5)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	pt := geom.Pt(1.5, 1.8)
	snap := d.Sounding(pt)
	full, err := e.Locate(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Prior stuck at the opposite corner, far outside DisagreeMarginM.
	res, err := e.LocateOpts(snap, LocateOptions{Prior: tightPrior(geom.Pt(-2.0, -2.5))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gated {
		t.Fatal("teleporting tag was served a gated fix")
	}
	if res.Fallback != FallbackDisagree {
		t.Fatalf("fallback = %q, want %q", res.Fallback, FallbackDisagree)
	}
	if res.Estimate != full.Estimate {
		t.Fatalf("fallback estimate %v != full-grid %v", res.Estimate, full.Estimate)
	}
}

// TestGatedLowConfFallsBack wires the flat-surface trigger: with an
// absurdly small MaxTileFrac every selection is "too many tiles".
func TestGatedLowConfFallsBack(t *testing.T) {
	d, err := testbed.Paper(9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(d.Env.Room)
	cfg.Gate.MaxTileFrac = 1e-9
	e, err := NewEngine(d.Anchors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := geom.Pt(-0.5, 0.9)
	snap := d.Sounding(pt)
	full, err := e.Locate(snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.LocateOpts(snap, LocateOptions{Prior: tightPrior(full.Estimate)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gated || res.Fallback != FallbackLowConf {
		t.Fatalf("gated=%v fallback=%q, want lowconf fallback", res.Gated, res.Fallback)
	}
	if res.Estimate != full.Estimate {
		t.Fatalf("fallback estimate %v != full-grid %v", res.Estimate, full.Estimate)
	}
}

// TestGatedStatsPartition checks the counter algebra: every Locate-family
// fix is either gated or full, and fallbacks are attributed to exactly
// one trigger.
func TestGatedStatsPartition(t *testing.T) {
	d, err := testbed.Paper(11)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	var wantGated, wantFull, wantFallbacks uint64
	var lastSnap = d.Sounding(gatedScenarioPoints[0])
	for _, pt := range gatedScenarioPoints {
		snap := d.Sounding(pt)
		lastSnap = snap
		full, err := e.Locate(snap)
		if err != nil {
			t.Fatal(err)
		}
		wantFull++
		res, err := e.LocateOpts(snap, LocateOptions{Prior: tightPrior(full.Estimate)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Gated {
			wantGated++
		} else {
			wantFull++
			wantFallbacks++
			if res.Fallback == "" {
				t.Error("non-gated LocateOpts result without a fallback reason")
			}
		}
	}
	if wantGated == 0 {
		t.Fatal("no scenario point produced a gated fix")
	}
	// Teleport prior: guaranteed fallback → one more full fix.
	res, err := e.LocateOpts(lastSnap, LocateOptions{Prior: tightPrior(geom.Pt(-2.2, -2.8))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gated {
		t.Fatal("teleport prior was served a gated fix")
	}
	wantFull++
	wantFallbacks++
	s := e.Stats()
	if s.Fixes != s.GatedFixes+s.FullFixes {
		t.Errorf("Fixes %d != Gated %d + Full %d", s.Fixes, s.GatedFixes, s.FullFixes)
	}
	if s.GatedFixes != wantGated {
		t.Errorf("GatedFixes = %d, want %d", s.GatedFixes, wantGated)
	}
	if s.FullFixes != wantFull {
		t.Errorf("FullFixes = %d, want %d", s.FullFixes, wantFull)
	}
	if got := s.FallbackDisagree + s.FallbackLowConf + s.FallbackNoPeaks; got != wantFallbacks {
		t.Errorf("fallback counters sum to %d, want %d", got, wantFallbacks)
	}
	if s.FallbackDisagree == 0 {
		t.Error("teleport prior did not count a disagree fallback")
	}
	if s.TilesRefined == 0 || s.TilesTotal == 0 || s.TilesRefined > s.TilesTotal {
		t.Errorf("tile counters %d/%d", s.TilesRefined, s.TilesTotal)
	}
}

// TestPolarFill32Golden compares the float32 kernel against the float64
// oracle over the full polar plane: relative error (against the plane
// maximum) must stay within float32 accumulation noise. RefineDeltaStep
// is pinned to 1 so every column is evaluated exactly; the default
// stride's interpolation error is bounded separately by
// TestPolarFill32InterpError.
func TestPolarFill32Golden(t *testing.T) {
	d, err := testbed.Paper(21)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(d.Env.Room)
	cfg.Gate.RefineDeltaStep = 1
	cfg.Gate.RefineThetaStep = 1
	e, err := NewEngine(d.Anchors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Sounding(geom.Pt(0.9, -0.4))
	a, err := CorrectRef(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps := e.planesFor(a.Freqs)
	T, D := len(e.thetas), len(e.deltas)
	for anchor := 0; anchor < a.NumAnchors(); anchor++ {
		golden := e.polarLikelihood(a, anchor)

		got := make([]float32, T*D)
		rowLo := make([]int32, T)
		rowHi := make([]int32, T)
		for tr := range rowHi {
			rowHi[tr] = int32(D)
		}
		acc := make([]float32, 2*D)
		avp := make([]complex128, a.NumBands()*a.NumAntennas())
		bfCoeffs(ps, a, anchor, avp)
		e.polarFill32(ps, a, anchor, got, rowLo, rowHi, acc, avp)

		var max float64
		for _, v := range golden.Data {
			if v > max {
				max = v
			}
		}
		if !(max > 0) {
			t.Fatalf("anchor %d: degenerate golden plane", anchor)
		}
		worst := 0.0
		for i, v := range golden.Data {
			if rel := math.Abs(float64(got[i])-v) / max; rel > worst {
				worst = rel
			}
		}
		if worst > 1e-4 {
			t.Errorf("anchor %d: float32 plane diverges, worst rel err %.2e", anchor, worst)
		}
	}
}

// TestPolarFill32InterpError bounds the Δ-interpolation error of the
// default RefineDeltaStep: at cells above 30% of the plane maximum —
// the ones that shape candidate peaks — the interpolated plane must
// stay within 2% of the exact float64 oracle. The magnitude profile is
// band-limited along Δ by the sounded channel spread, which is what
// makes the strided sweep admissible at all; this test is the tripwire
// if a future grid or band-plan change breaks that assumption.
func TestPolarFill32InterpError(t *testing.T) {
	d, err := testbed.Paper(23)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	if e.cfg.Gate.RefineDeltaStep < 2 && e.cfg.Gate.RefineThetaStep < 2 {
		t.Skip("interpolation disabled by default")
	}
	snap := d.Sounding(geom.Pt(-0.8, 1.1))
	a, err := CorrectRef(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps := e.planesFor(a.Freqs)
	T, D := len(e.thetas), len(e.deltas)
	got := make([]float32, T*D)
	rowLo := make([]int32, T)
	rowHi := make([]int32, T)
	for tr := range rowHi {
		rowHi[tr] = int32(D)
	}
	acc := make([]float32, 2*D)
	for anchor := 0; anchor < a.NumAnchors(); anchor++ {
		golden := e.polarLikelihood(a, anchor)
		avp := make([]complex128, a.NumBands()*a.NumAntennas())
		bfCoeffs(ps, a, anchor, avp)
		e.polarFill32(ps, a, anchor, got, rowLo, rowHi, acc, avp)
		var max float64
		for _, v := range golden.Data {
			if v > max {
				max = v
			}
		}
		if !(max > 0) {
			t.Fatalf("anchor %d: degenerate golden plane", anchor)
		}
		worst := 0.0
		for i, v := range golden.Data {
			if v < 0.3*max {
				continue
			}
			if rel := math.Abs(float64(got[i])-v) / v; rel > worst {
				worst = rel
			}
		}
		if worst > 0.02 {
			t.Errorf("anchor %d: interpolated plane off by %.4f at peak cells", anchor, worst)
		}
	}
}

// TestCoarsePolarFill32Golden checks the decimated coarse kernel: each
// coarse sample is the same (θ, Δ) evaluation as the float64 plane at
// the decimated indices.
func TestCoarsePolarFill32Golden(t *testing.T) {
	d, err := testbed.Paper(22)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	snap := d.Sounding(geom.Pt(-1.1, 1.6))
	a, err := CorrectRef(snap, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps := e.planesFor(a.Freqs)
	gt := e.gatedFor(0)
	g := e.Config().Gate
	D := len(e.deltas)
	for anchor := 0; anchor < a.NumAnchors(); anchor++ {
		golden := e.polarLikelihood(a, anchor)
		var max float64
		for _, v := range golden.Data {
			if v > max {
				max = v
			}
		}
		cpolar := make([]float32, gt.cT*gt.cD)
		acc := make([]float32, 2*gt.cD)
		cp := &gt.coarse[anchor]
		avp := make([]complex128, a.NumBands()*a.NumAntennas())
		bfCoeffs(ps, a, anchor, avp)
		e.coarsePolarFill32(ps, cp, a, anchor, gt.cT, gt.cD, cpolar, acc, avp)
		worst := 0.0
		for ct := 0; ct < gt.cT; ct++ {
			for cd := int(cp.dLo[ct]); cd < int(cp.dHi[ct]); cd++ {
				want := golden.Data[(ct*g.CoarseThetaStep)*D+cd*g.CoarseDeltaStep]
				if rel := math.Abs(float64(cpolar[ct*gt.cD+cd])-want) / max; rel > worst {
					worst = rel
				}
			}
		}
		if worst > 1e-4 {
			t.Errorf("anchor %d: coarse float32 samples diverge, worst rel err %.2e", anchor, worst)
		}
	}
}

// TestGatePolicyHysteresis exercises the per-tag inflation state machine.
func TestGatePolicyHysteresis(t *testing.T) {
	g := NewGatePolicy()
	base := g.Prior(geom.Pt(1, 2), 0.2, 0.1, 0.3)
	if base.Center != geom.Pt(1, 2) || base.Theta != 0.3 {
		t.Fatalf("prior frame not preserved: %+v", base)
	}
	if math.Abs(base.SemiMajor-0.6) > 1e-12 || math.Abs(base.SemiMinor-0.3) > 1e-12 {
		t.Fatalf("3σ scaling wrong: %+v", base)
	}
	// The floor keeps a hyper-confident filter searchable.
	floored := g.Prior(geom.Pt(0, 0), 0.001, 0.0, 0)
	if floored.SemiMajor < 0.25 || floored.SemiMinor < 0.25 {
		t.Fatalf("radius floor not applied: %+v", floored)
	}
	// Fallbacks inflate geometrically up to the cap...
	for i := 0; i < 10; i++ {
		g.Observe(&Result{Fallback: FallbackDisagree})
	}
	inflated := g.Prior(geom.Pt(0, 0), 0.2, 0.2, 0)
	if math.Abs(inflated.SemiMajor-0.2*3*8) > 1e-9 {
		t.Fatalf("inflation cap: got %v, want %v", inflated.SemiMajor, 0.2*3*8)
	}
	// ... full fixes without a gate attempt change nothing ...
	g.Observe(&Result{})
	if p := g.Prior(geom.Pt(0, 0), 0.2, 0.2, 0); p.SemiMajor != inflated.SemiMajor {
		t.Fatalf("plain full fix moved the inflation: %v", p.SemiMajor)
	}
	// ... and gated successes decay back to 1.
	for i := 0; i < 10; i++ {
		g.Observe(&Result{Gated: true})
	}
	settled := g.Prior(geom.Pt(0, 0), 0.2, 0.2, 0)
	if math.Abs(settled.SemiMajor-0.6) > 1e-12 {
		t.Fatalf("inflation did not decay: %v", settled.SemiMajor)
	}
}
