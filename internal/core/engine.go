package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// Config holds the tunable parameters of the localization engine. The
// defaults reproduce §7: score weights a = 0.1, b = 0.05 and a circular
// 7×7 entropy window.
type Config struct {
	// Room bounds the XY search grid.
	Room geom.Rect
	// CellM is the XY grid cell size in meters.
	CellM float64
	// ThetaStepDeg is the angular resolution of the polar likelihood.
	ThetaStepDeg float64
	// DeltaStepM is the relative-distance resolution of the polar
	// likelihood.
	DeltaStepM float64
	// ScoreA and ScoreB weight distance and entropy in Eq. 18.
	ScoreA, ScoreB float64
	// EntropyWindow is the circular neighborhood diameter (in window
	// samples) for the peak entropy H; EntropyStride is the spacing in
	// grid cells between window samples, scaling the window's physical
	// footprint (7 samples × stride 4 × 5 cm cells ≈ a 1.4 m
	// neighborhood).
	EntropyWindow int
	EntropyStride int
	// PeakMinFrac drops likelihood peaks below this fraction of the
	// global maximum.
	PeakMinFrac float64
	// PeakMinSepCells suppresses peaks within this Chebyshev distance of
	// a stronger peak.
	PeakMinSepCells int
	// NormalizePerAnchor scales each anchor's XY likelihood to unit
	// maximum before summing, so near anchors do not drown far ones.
	NormalizePerAnchor bool
	// Gate tunes the prior-gated coarse-to-fine search (gated.go). Zero
	// fields take their defaults in NewEngine.
	Gate GateConfig
}

// GateConfig tunes the two-stage gated search of LocateOpts: how much the
// coarse pass decimates each grid, how refinement tiles are selected, and
// when the gate refuses and falls back to the full-grid path.
type GateConfig struct {
	// CoarseStep is the XY decimation of the coarse pass: every
	// CoarseStep-th cell in each dimension is evaluated (default 4).
	CoarseStep int
	// CoarseThetaStep / CoarseDeltaStep decimate the polar grid the coarse
	// pass samples (defaults 4 and 16). θ is sampled nearest-row and its
	// error absorbed by the selection safety margin; Δ is projected with
	// a two-tap linear interpolation (the magnitude is smooth along Δ),
	// which is what lets the Δ stride run twice as coarse as θ.
	CoarseThetaStep int
	CoarseDeltaStep int
	// RefineDeltaStep is the Δ sampling stride of the full-resolution
	// refinement sweep (default 4): polarFill32 evaluates every
	// RefineDeltaStep-th column exactly and linearly interpolates the
	// rest. The Δ magnitude profile is band-limited by the channel
	// spread (correlation scale of meters against a few-centimeter
	// grid), so 4 keeps the peak-cell error under 1%; 1 disables
	// interpolation and recovers the exact sweep.
	RefineDeltaStep int
	// RefineThetaStep is the θ sampling stride of the refinement sweep
	// (default 2): every RefineThetaStep-th row (plus the last) is
	// evaluated and skipped rows are interpolated. A J-element array's
	// beam pattern has only ~J degrees of freedom across the aperture,
	// so the 1° row grid heavily oversamples it; 1 disables row
	// interpolation.
	RefineThetaStep int
	// TileCells is the edge length, in XY cells, of a refinement tile
	// (default 16 → 0.8 m at the paper's 5 cm grid).
	TileCells int
	// SelectSafety scales the coarse tile-selection threshold below
	// PeakMinFrac (default 0.8): a tile is refined when it holds a
	// coarse local maximum at SelectSafety·PeakMinFrac of the coarse
	// global maximum. Measured decimation undershoot at true peaks is
	// under 10%, so 0.8 keeps every full-grid candidate selectable while
	// rejecting background ripple.
	SelectSafety float64
	// MaxTileFrac aborts the gate when the value-selected tile fraction
	// exceeds it (default 0.35): a flat coarse surface means low peak
	// confidence, and refining most of the room costs more than the full
	// path it is supposed to replace.
	MaxTileFrac float64
	// DisagreeMarginM grows the prior ellipse for the coarse/prior
	// agreement check (default 0.5 m): a coarse argmax outside the grown
	// ellipse falls back to the full grid.
	DisagreeMarginM float64
}

// DefaultGateConfig returns the gated-search defaults.
func DefaultGateConfig() GateConfig {
	return GateConfig{
		CoarseStep:      4,
		CoarseThetaStep: 4,
		CoarseDeltaStep: 16,
		RefineDeltaStep: 4,
		RefineThetaStep: 2,
		TileCells:       16,
		SelectSafety:    0.8,
		MaxTileFrac:     0.35,
		DisagreeMarginM: 0.5,
	}
}

// withDefaults fills zero fields from DefaultGateConfig.
func (g GateConfig) withDefaults() GateConfig {
	d := DefaultGateConfig()
	if g.CoarseStep == 0 {
		g.CoarseStep = d.CoarseStep
	}
	if g.CoarseThetaStep == 0 {
		g.CoarseThetaStep = d.CoarseThetaStep
	}
	if g.CoarseDeltaStep == 0 {
		g.CoarseDeltaStep = d.CoarseDeltaStep
	}
	if g.RefineDeltaStep == 0 {
		g.RefineDeltaStep = d.RefineDeltaStep
	}
	if g.RefineThetaStep == 0 {
		g.RefineThetaStep = d.RefineThetaStep
	}
	if g.TileCells == 0 {
		g.TileCells = d.TileCells
	}
	//lint:ignore floateq zero value means "use the default", an exact sentinel
	if g.SelectSafety == 0 {
		g.SelectSafety = d.SelectSafety
	}
	//lint:ignore floateq zero value means "use the default", an exact sentinel
	if g.MaxTileFrac == 0 {
		g.MaxTileFrac = d.MaxTileFrac
	}
	//lint:ignore floateq zero value means "use the default", an exact sentinel
	if g.DisagreeMarginM == 0 {
		g.DisagreeMarginM = d.DisagreeMarginM
	}
	return g
}

func (g GateConfig) valid() bool {
	return g.CoarseStep >= 2 && g.CoarseThetaStep >= 1 && g.CoarseDeltaStep >= 1 &&
		g.RefineDeltaStep >= 1 && g.RefineThetaStep >= 1 &&
		g.TileCells >= 4 && g.SelectSafety > 0 && g.SelectSafety <= 1 &&
		g.MaxTileFrac > 0 && g.MaxTileFrac <= 1 && g.DisagreeMarginM > 0
}

// DefaultConfig returns the paper's parameters for the given room.
func DefaultConfig(room geom.Rect) Config {
	return Config{
		Room:               room,
		CellM:              0.05,
		ThetaStepDeg:       1.0,
		DeltaStepM:         0.05,
		ScoreA:             0.1,
		ScoreB:             0.05,
		EntropyWindow:      7,
		EntropyStride:      4,
		PeakMinFrac:        0.5,
		PeakMinSepCells:    4,
		NormalizePerAnchor: true,
		Gate:               DefaultGateConfig(),
	}
}

// Engine localizes tags from corrected channels for a fixed anchor
// deployment. It precomputes the geometry-dependent tables once (see
// planes.go) and can then process many snapshots concurrently; the
// steady-state fix path draws all scratch from internal pools and
// performs no likelihood-sized allocations.
type Engine struct {
	cfg     Config
	anchors []geom.Array

	thetas    []float64 // polar θ grid, radians
	sinThetas []float64 // sin of each θ grid point
	deltas    []float64 // polar Δd grid, meters (relative distance d_i0T − d_00T)

	// anchorDist[i] is d^{i0}_{00}: antenna 0 of anchor i to antenna 0 of
	// anchor 0 — known at deployment time (§5.3). The inter-anchor
	// sounding is always transmitted by anchor 0, so these distances stay
	// fixed even when the α reference is re-elected; the steering offset
	// for reference r is anchorDist[i] − anchorDist[r].
	anchorDist []float64

	// spacings lists the distinct antenna spacings of the deployment;
	// spacingIdx[i] selects anchor i's entry (the angle-rotor tables in a
	// planeSet are shared per spacing).
	spacings   []float64
	spacingIdx []int

	// projMu guards projSets.
	projMu sync.RWMutex
	// projSets holds the per-anchor polar→XY projection tables
	// (planes.go), one set per reference anchor because Δ is measured
	// relative to the reference's antenna 0. The set for reference 0 is
	// built in NewEngine; other references build lazily on first use
	// (failover is rare). Guarded by projMu.
	projSets map[int][]anchorProj

	// XY grid geometry.
	nx, ny int
	x0, y0 float64

	// planeMu guards planes.
	planeMu sync.RWMutex
	planes  map[uint64][]*planeSet // guarded by planeMu

	// gatedMu guards gatedSets, the per-reference coarse + tiled float32
	// SoA projection tables of the gated search (gated.go), built lazily
	// on the first prior-carrying fix per reference.
	gatedMu   sync.RWMutex
	gatedSets map[int]*gatedTables // guarded by gatedMu

	// Scratch pools (pool.go) and Stats counters.
	polarPool *dsp.GridPool // (D × T) polar grids, span-filled (no zeroing)
	xyPool    *dsp.GridPool // (nx × ny) per-anchor maps, zeroed on Get
	floatPool sync.Pool     // *[]float64 accumulator planes / entropy windows
	intPool   sync.Pool     // *[]int active-anchor lists
	runPool   sync.Pool     // *likRun per-likelihood workspaces
	gatedPool sync.Pool     // *gatedRun per-gated-fix workspaces
	alphaPool sync.Pool     // *alphaBox corrected-channel workspaces
	peakPool  sync.Pool     // *[]dsp.Peak peak-extraction scratch

	statFixes       atomic.Uint64
	statPlaneBuilds atomic.Uint64
	statProjBuilds  atomic.Uint64
	statTableBytes  atomic.Uint64
	statPoolHits    atomic.Uint64
	statPoolMisses  atomic.Uint64
	statRowsMasked  atomic.Uint64

	statGatedFixes       atomic.Uint64
	statFullFixes        atomic.Uint64
	statFallbackDisagree atomic.Uint64
	statFallbackLowConf  atomic.Uint64
	statFallbackNoPeaks  atomic.Uint64
	statTilesRefined     atomic.Uint64
	statTilesTotal       atomic.Uint64
}

// Stats is a snapshot of the engine's performance counters.
type Stats struct {
	// Fixes counts completed Locate/LocateAlpha calls.
	Fixes uint64
	// PlaneBuilds counts steering-plane constructions: one per band plan
	// the engine has served (a stable deployment sits at 1).
	PlaneBuilds uint64
	// TableBytes is the resident footprint of all precomputed tables
	// (projection tables plus every cached steering plane).
	TableBytes uint64
	// PoolHits/PoolMisses count scratch acquisitions served from (resp.
	// missing) the engine's pools; steady state is all hits.
	PoolHits, PoolMisses uint64
	// ProjBuilds counts projection-table constructions: one per reference
	// anchor the engine has localized against (a healthy deployment that
	// never fails over sits at 1).
	ProjBuilds uint64
	// RowsMasked counts α rows that arrived in a snapshot but were zeroed
	// by the finite/denormal guard (NaN/Inf products or zero/denormal
	// reference tones) on the pooled fix path.
	RowsMasked uint64
	// GatedFixes counts fixes served by the prior-gated coarse-to-fine
	// path; FullFixes counts full-grid likelihood fixes (including gated
	// attempts that fell back). Fixes = GatedFixes + FullFixes for the
	// BLoc estimators.
	GatedFixes, FullFixes uint64
	// FallbackDisagree/FallbackLowConf/FallbackNoPeaks count gated
	// attempts that fell back to the full grid, by trigger: coarse argmax
	// outside the prior ellipse, a flat coarse surface selecting too many
	// tiles, and a refined surface yielding no scoreable peak.
	FallbackDisagree, FallbackLowConf, FallbackNoPeaks uint64
	// TilesRefined/TilesTotal accumulate, over gated fixes, how many
	// refinement tiles were evaluated out of how many the room has — the
	// refined-area fraction is TilesRefined/TilesTotal.
	TilesRefined, TilesTotal uint64
}

// Stats returns the engine's cumulative performance counters, folding in
// the grid-pool counters.
func (e *Engine) Stats() Stats {
	ph, pm := e.polarPool.Counters()
	xh, xm := e.xyPool.Counters()
	return Stats{
		Fixes:            e.statFixes.Load(),
		PlaneBuilds:      e.statPlaneBuilds.Load(),
		TableBytes:       e.statTableBytes.Load(),
		PoolHits:         e.statPoolHits.Load() + ph + xh,
		PoolMisses:       e.statPoolMisses.Load() + pm + xm,
		ProjBuilds:       e.statProjBuilds.Load(),
		RowsMasked:       e.statRowsMasked.Load(),
		GatedFixes:       e.statGatedFixes.Load(),
		FullFixes:        e.statFullFixes.Load(),
		FallbackDisagree: e.statFallbackDisagree.Load(),
		FallbackLowConf:  e.statFallbackLowConf.Load(),
		FallbackNoPeaks:  e.statFallbackNoPeaks.Load(),
		TilesRefined:     e.statTilesRefined.Load(),
		TilesTotal:       e.statTilesTotal.Load(),
	}
}

// NewEngine validates the configuration and precomputes grids.
func NewEngine(anchors []geom.Array, cfg Config) (*Engine, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("core: need at least 2 anchors, got %d", len(anchors))
	}
	if cfg.CellM <= 0 || cfg.ThetaStepDeg <= 0 || cfg.DeltaStepM <= 0 {
		return nil, fmt.Errorf("core: non-positive grid resolution in config")
	}
	if cfg.Room.Width() <= 0 || cfg.Room.Height() <= 0 {
		return nil, fmt.Errorf("core: degenerate room %v", cfg.Room)
	}
	if cfg.EntropyWindow < 3 {
		return nil, fmt.Errorf("core: entropy window %d too small", cfg.EntropyWindow)
	}
	if cfg.EntropyStride < 1 {
		return nil, fmt.Errorf("core: entropy stride %d must be positive", cfg.EntropyStride)
	}
	cfg.Gate = cfg.Gate.withDefaults()
	if !cfg.Gate.valid() {
		return nil, fmt.Errorf("core: invalid gate config %+v", cfg.Gate)
	}
	e := &Engine{cfg: cfg, anchors: anchors}

	// θ grid spans the front half-plane of each array.
	step := geom.Rad(cfg.ThetaStepDeg)
	for t := -math.Pi / 2; t <= math.Pi/2+1e-9; t += step {
		e.thetas = append(e.thetas, t)
	}

	// Δd grid: relative distances are bounded by the room diagonal (the
	// triangle inequality: |d_i − d_0| ≤ |anchor_i − anchor_0| ≤ diag,
	// and candidate points inside the room keep |Δ| under the diagonal).
	diag := math.Hypot(cfg.Room.Width(), cfg.Room.Height())
	for d := -diag; d <= diag+1e-9; d += cfg.DeltaStepM {
		e.deltas = append(e.deltas, d)
	}

	if len(e.thetas) < 2 || len(e.deltas) < 2 {
		return nil, fmt.Errorf("core: polar grid %dx%d too coarse (θ or Δ resolution larger than its span)",
			len(e.thetas), len(e.deltas))
	}
	e.sinThetas = make([]float64, len(e.thetas))
	for t, theta := range e.thetas {
		e.sinThetas[t] = math.Sin(theta)
	}

	e.anchorDist = make([]float64, len(anchors))
	m0 := anchors[0].Antenna(0)
	for i, a := range anchors {
		e.anchorDist[i] = a.Antenna(0).Dist(m0)
	}

	// Distinct antenna spacings (almost always one): the per-spacing
	// angle-rotor tables are shared by every anchor with that spacing.
	e.spacingIdx = make([]int, len(anchors))
	for i, a := range anchors {
		idx := -1
		for si, l := range e.spacings {
			if math.Float64bits(l) == math.Float64bits(a.Spacing) {
				idx = si
				break
			}
		}
		if idx < 0 {
			idx = len(e.spacings)
			e.spacings = append(e.spacings, a.Spacing)
		}
		e.spacingIdx[i] = idx
	}

	e.nx = int(math.Ceil(cfg.Room.Width()/cfg.CellM)) + 1
	e.ny = int(math.Ceil(cfg.Room.Height()/cfg.CellM)) + 1
	e.x0, e.y0 = cfg.Room.Min.X, cfg.Room.Min.Y

	e.projSets = map[int][]anchorProj{0: e.buildProjectionsFor(0)}
	e.polarPool = dsp.NewGridPool(len(e.deltas), len(e.thetas), false)
	e.xyPool = dsp.NewGridPool(e.nx, e.ny, true)
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Anchors returns the deployment geometry.
func (e *Engine) Anchors() []geom.Array { return e.anchors }

// GridSize returns the XY grid dimensions.
func (e *Engine) GridSize() (nx, ny int) { return e.nx, e.ny }

// CellCenter returns the room coordinates of cell (ix, iy).
func (e *Engine) CellCenter(ix, iy int) geom.Point {
	return geom.Pt(e.x0+float64(ix)*e.cfg.CellM, e.y0+float64(iy)*e.cfg.CellM)
}

// cellOf returns fractional cell coordinates of a point.
func (e *Engine) cellOf(p geom.Point) (fx, fy float64) {
	return (p.X - e.x0) / e.cfg.CellM, (p.Y - e.y0) / e.cfg.CellM
}
