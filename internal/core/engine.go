package core

import (
	"fmt"
	"math"

	"bloc/internal/geom"
)

// Config holds the tunable parameters of the localization engine. The
// defaults reproduce §7: score weights a = 0.1, b = 0.05 and a circular
// 7×7 entropy window.
type Config struct {
	// Room bounds the XY search grid.
	Room geom.Rect
	// CellM is the XY grid cell size in meters.
	CellM float64
	// ThetaStepDeg is the angular resolution of the polar likelihood.
	ThetaStepDeg float64
	// DeltaStepM is the relative-distance resolution of the polar
	// likelihood.
	DeltaStepM float64
	// ScoreA and ScoreB weight distance and entropy in Eq. 18.
	ScoreA, ScoreB float64
	// EntropyWindow is the circular neighborhood diameter (in window
	// samples) for the peak entropy H; EntropyStride is the spacing in
	// grid cells between window samples, scaling the window's physical
	// footprint (7 samples × stride 4 × 5 cm cells ≈ a 1.4 m
	// neighborhood).
	EntropyWindow int
	EntropyStride int
	// PeakMinFrac drops likelihood peaks below this fraction of the
	// global maximum.
	PeakMinFrac float64
	// PeakMinSepCells suppresses peaks within this Chebyshev distance of
	// a stronger peak.
	PeakMinSepCells int
	// NormalizePerAnchor scales each anchor's XY likelihood to unit
	// maximum before summing, so near anchors do not drown far ones.
	NormalizePerAnchor bool
}

// DefaultConfig returns the paper's parameters for the given room.
func DefaultConfig(room geom.Rect) Config {
	return Config{
		Room:               room,
		CellM:              0.05,
		ThetaStepDeg:       1.0,
		DeltaStepM:         0.05,
		ScoreA:             0.1,
		ScoreB:             0.05,
		EntropyWindow:      7,
		EntropyStride:      4,
		PeakMinFrac:        0.5,
		PeakMinSepCells:    4,
		NormalizePerAnchor: true,
	}
}

// Engine localizes tags from corrected channels for a fixed anchor
// deployment. It precomputes the geometry-dependent tables once and can
// then process many snapshots.
type Engine struct {
	cfg     Config
	anchors []geom.Array

	thetas []float64 // polar θ grid, radians
	deltas []float64 // polar Δd grid, meters (relative distance d_i0T − d_00T)

	// anchorDist[i] is d^{i0}_{00}: antenna 0 of anchor i to antenna 0 of
	// the master — known at deployment time (§5.3).
	anchorDist []float64

	// XY grid geometry.
	nx, ny int
	x0, y0 float64
}

// NewEngine validates the configuration and precomputes grids.
func NewEngine(anchors []geom.Array, cfg Config) (*Engine, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("core: need at least 2 anchors, got %d", len(anchors))
	}
	if cfg.CellM <= 0 || cfg.ThetaStepDeg <= 0 || cfg.DeltaStepM <= 0 {
		return nil, fmt.Errorf("core: non-positive grid resolution in config")
	}
	if cfg.Room.Width() <= 0 || cfg.Room.Height() <= 0 {
		return nil, fmt.Errorf("core: degenerate room %v", cfg.Room)
	}
	if cfg.EntropyWindow < 3 {
		return nil, fmt.Errorf("core: entropy window %d too small", cfg.EntropyWindow)
	}
	if cfg.EntropyStride < 1 {
		return nil, fmt.Errorf("core: entropy stride %d must be positive", cfg.EntropyStride)
	}
	e := &Engine{cfg: cfg, anchors: anchors}

	// θ grid spans the front half-plane of each array.
	step := geom.Rad(cfg.ThetaStepDeg)
	for t := -math.Pi / 2; t <= math.Pi/2+1e-9; t += step {
		e.thetas = append(e.thetas, t)
	}

	// Δd grid: relative distances are bounded by the room diagonal (the
	// triangle inequality: |d_i − d_0| ≤ |anchor_i − anchor_0| ≤ diag,
	// and candidate points inside the room keep |Δ| under the diagonal).
	diag := math.Hypot(cfg.Room.Width(), cfg.Room.Height())
	for d := -diag; d <= diag+1e-9; d += cfg.DeltaStepM {
		e.deltas = append(e.deltas, d)
	}

	e.anchorDist = make([]float64, len(anchors))
	m0 := anchors[0].Antenna(0)
	for i, a := range anchors {
		e.anchorDist[i] = a.Antenna(0).Dist(m0)
	}

	e.nx = int(math.Ceil(cfg.Room.Width()/cfg.CellM)) + 1
	e.ny = int(math.Ceil(cfg.Room.Height()/cfg.CellM)) + 1
	e.x0, e.y0 = cfg.Room.Min.X, cfg.Room.Min.Y
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Anchors returns the deployment geometry.
func (e *Engine) Anchors() []geom.Array { return e.anchors }

// GridSize returns the XY grid dimensions.
func (e *Engine) GridSize() (nx, ny int) { return e.nx, e.ny }

// CellCenter returns the room coordinates of cell (ix, iy).
func (e *Engine) CellCenter(ix, iy int) geom.Point {
	return geom.Pt(e.x0+float64(ix)*e.cfg.CellM, e.y0+float64(iy)*e.cfg.CellM)
}

// cellOf returns fractional cell coordinates of a point.
func (e *Engine) cellOf(p geom.Point) (fx, fy float64) {
	return (p.X - e.x0) / e.cfg.CellM, (p.Y - e.y0) / e.cfg.CellM
}
