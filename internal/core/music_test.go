package core

import (
	"math"
	"math/cmplx"
	"testing"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/rfsim"
	"bloc/internal/testbed"
)

// synthTwoSourceSnapshot builds channel vectors for two plane waves
// arriving at θ1 and θ2 with the engine's steering convention, across K
// "bands" with random common rotations (standing in for LO offsets).
func synthTwoSourceSnapshot(e *Engine, anchor int, theta1, theta2 float64, amp2 float64, freqs []float64) [][][]complex128 {
	J := e.anchors[anchor].N
	l := e.anchors[anchor].Spacing
	K := len(freqs)
	out := make([][][]complex128, K)
	for k := 0; k < K; k++ {
		w := 2 * math.Pi * freqs[k] / rfsim.SpeedOfLight
		row := make([]complex128, J)
		// Distinct per-band source phases make the two sources
		// incoherent across snapshots, as multipath with different path
		// lengths is across bands.
		p1 := cmplx.Rect(1, float64(k)*1.7)
		p2 := cmplx.Rect(amp2, float64(k)*2.9+0.5)
		for j := 0; j < J; j++ {
			// Physical model: antenna j is closer to a positive-θ target,
			// so its phase advances (+).
			s1, c1 := math.Sincos(w * float64(j) * l * math.Sin(theta1))
			s2, c2 := math.Sincos(w * float64(j) * l * math.Sin(theta2))
			row[j] = p1*complex(c1, s1) + p2*complex(c2, s2)
		}
		grid := make([][]complex128, anchor+1)
		grid[anchor] = row
		out[k] = grid
	}
	return out
}

func TestMUSICResolvesClosePaths(t *testing.T) {
	// Two sources 18° apart: inside the Bartlett beamwidth of a 4-element
	// λ/2 array (≈26°), so Eq. 15 merges them into one lobe while MUSIC
	// shows two pseudo-spectrum peaks.
	d, err := testbed.Paper(51)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	theta1, theta2 := geom.Rad(-9), geom.Rad(9)
	freqs := make([]float64, 37)
	for i := range freqs {
		freqs[i] = 2.404e9 + float64(i)*2e6
	}
	values := synthTwoSourceSnapshot(e, 0, theta1, theta2, 0.9, freqs)

	music, err := e.MUSICSpectrum(freqs, values, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	bartlett := e.angleSpectrum(freqs, values, nil, 0)

	countPeaks := func(spec []float64, frac float64) int {
		gmax := spec[dsp.ArgMax(spec)]
		n := 0
		for i := 1; i < len(spec)-1; i++ {
			if spec[i] > spec[i-1] && spec[i] >= spec[i+1] && spec[i] > frac*gmax {
				n++
			}
		}
		return n
	}
	mp := countPeaks(music, 0.3)
	bp := countPeaks(bartlett, 0.8)
	t.Logf("MUSIC peaks: %d, Bartlett peaks: %d", mp, bp)
	if mp < 2 {
		t.Errorf("MUSIC found %d peaks, want 2 (sources at ±9°)", mp)
	}
	if bp >= 2 {
		t.Logf("note: Bartlett also resolved the sources (peaks=%d) — acceptable but unexpected", bp)
	}
	// MUSIC peak locations near the true angles.
	gmax := music[dsp.ArgMax(music)]
	var found1, found2 bool
	for i := 1; i < len(music)-1; i++ {
		if music[i] > music[i-1] && music[i] >= music[i+1] && music[i] > 0.3*gmax {
			th := e.thetas[i]
			if math.Abs(th-theta1) < geom.Rad(4) {
				found1 = true
			}
			if math.Abs(th-theta2) < geom.Rad(4) {
				found2 = true
			}
		}
	}
	if !found1 || !found2 {
		t.Errorf("MUSIC peaks missed the true angles (found1=%v found2=%v)", found1, found2)
	}
}

func TestMUSICSingleSourceMatchesTruth(t *testing.T) {
	d, err := testbed.Paper(52)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	theta := geom.Rad(23)
	freqs := []float64{2.41e9, 2.43e9, 2.45e9, 2.47e9}
	values := synthTwoSourceSnapshot(e, 0, theta, 0, 0, freqs) // second source off
	spec, err := e.MUSICSpectrum(freqs, values, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := e.thetas[dsp.ArgMax(spec)]
	if math.Abs(got-theta) > geom.Rad(2) {
		t.Errorf("MUSIC peak at %.1f°, want %.1f°", geom.Deg(got), geom.Deg(theta))
	}
}

func TestLocateMUSICFreeSpace(t *testing.T) {
	env := testbed.CleanEnvironment(53)
	env.WallReflectivity = 0
	d, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	tag := geom.Pt(0.8, 0.5)
	res, err := e.LocateMUSIC(d.Sounding(tag))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Dist(tag) > 0.35 {
		t.Errorf("MUSIC free-space error %.3f m", res.Estimate.Dist(tag))
	}
}

func TestLocateMUSICValidation(t *testing.T) {
	d, err := testbed.Paper(54)
	if err != nil {
		t.Fatal(err)
	}
	e := paperEngine(t, d)
	if _, err := e.LocateMUSIC(&csi.Snapshot{}); err == nil {
		t.Error("empty snapshot should fail")
	}
	if _, err := e.MUSICSpectrum(nil, nil, 0, 1); err == nil {
		t.Error("no bands should fail")
	}
	snap := d.Sounding(geom.Pt(0, 0))
	if _, err := e.MUSICSpectrum(snap.Freqs, snap.Tag, 0, 4); err == nil {
		t.Error("numPaths = J should fail")
	}
	if _, err := e.MUSICSpectrum(snap.Freqs, snap.Tag, 0, 0); err == nil {
		t.Error("numPaths = 0 should fail")
	}
}
