package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// Result is a localization outcome.
type Result struct {
	Estimate   geom.Point  // the reported tag position
	Candidates []Candidate // every scored likelihood peak
	Likelihood *dsp.Grid   // the combined XY likelihood (shared, do not mutate)
}

// Locate runs the full BLoc pipeline on a snapshot: offset correction,
// joint likelihood, peak scoring with Eq. 18.
func (e *Engine) Locate(s *csi.Snapshot) (*Result, error) {
	a, err := Correct(s)
	if err != nil {
		return nil, err
	}
	return e.LocateAlpha(a)
}

// LocateAlpha runs the BLoc pipeline on already-corrected channels.
func (e *Engine) LocateAlpha(a *Alpha) (*Result, error) {
	if err := e.checkAlpha(a); err != nil {
		return nil, err
	}
	grid, _ := e.Likelihood(a)
	cands := e.candidates(grid)
	best, ok := bestByScore(cands)
	if !ok {
		return nil, fmt.Errorf("core: no likelihood peaks found")
	}
	return &Result{Estimate: best.Loc, Candidates: cands, Likelihood: grid}, nil
}

// LocateShortestDistance is the §8.7 ablation: the same likelihood, but
// the direct path is chosen as the peak with the smallest total distance,
// without the entropy/score machinery.
func (e *Engine) LocateShortestDistance(s *csi.Snapshot) (*Result, error) {
	a, err := Correct(s)
	if err != nil {
		return nil, err
	}
	if err := e.checkAlpha(a); err != nil {
		return nil, err
	}
	grid, _ := e.Likelihood(a)
	cands := e.candidates(grid)
	best, ok := bestByShortestDistance(cands)
	if !ok {
		return nil, fmt.Errorf("core: no likelihood peaks found")
	}
	return &Result{Estimate: best.Loc, Candidates: cands, Likelihood: grid}, nil
}

// LocateAoA is the paper's baseline (§7, §8.2): AoA-combining in the
// spirit of ArrayTrack/SpotFi. Each anchor estimates one angle of arrival
// — the strongest direction of its angular spectrum (Eq. 15, averaged
// over bands; the least-ToF path selection those Wi-Fi systems use is
// unavailable because BLE's cross-band phase is garbled) — and the
// bearings are triangulated by a least-squares grid search. When any
// anchor locks onto a reflection instead of the direct path, the fix is
// dragged away, which is exactly why this baseline suffers in multipath.
func (e *Engine) LocateAoA(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(e.anchors) {
		return nil, fmt.Errorf("core: snapshot has %d anchors, engine %d", s.NumAnchors(), len(e.anchors))
	}
	I := s.NumAnchors()
	active := activeAnchors(s)
	if len(active) < 2 {
		return nil, fmt.Errorf("core: only %d anchors present, need >= 2 for AoA", len(active))
	}
	bearings := make([]float64, I)
	for _, i := range active {
		spec := e.angleSpectrum(s.Freqs, s.Tag, s.Have, i)
		bearings[i] = e.thetas[dsp.ArgMax(spec)]
	}
	// Triangulate: minimize the sum of squared wrapped angle residuals
	// over the anchors that actually reported.
	grid := dsp.NewGrid(e.nx, e.ny)
	best := math.Inf(1)
	bx, by := 0, 0
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			var res float64
			for _, i := range active {
				d := geom.WrapAngle(e.anchors[i].AngleTo(p) - bearings[i])
				res += d * d
			}
			grid.Set(ix, iy, -res)
			if res < best {
				best, bx, by = res, ix, iy
			}
		}
	}
	return &Result{Estimate: e.CellCenter(bx, by), Likelihood: grid}, nil
}

// activeAnchors lists the anchors with at least one present band row.
func activeAnchors(s *csi.Snapshot) []int {
	return s.PresentAnchors(1)
}

// LocateAoASoft is a strengthened variant of the AoA baseline (an
// extension beyond the paper): instead of committing to one bearing per
// anchor, every anchor's full angular spectrum is painted over the XY
// grid and the maps are summed, so secondary lobes still vote. It is used
// by the ablation benches to show how much of BLoc's advantage survives
// against a more generous baseline.
func (e *Engine) LocateAoASoft(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(e.anchors) {
		return nil, fmt.Errorf("core: snapshot has %d anchors, engine %d", s.NumAnchors(), len(e.anchors))
	}
	combined := dsp.NewGrid(e.nx, e.ny)
	for _, i := range activeAnchors(s) {
		spec := e.angleSpectrum(s.Freqs, s.Tag, s.Have, i)
		xy := e.angleSpectrumToXY(spec, i)
		if e.cfg.NormalizePerAnchor {
			xy.Normalize()
		}
		combined.AddGrid(xy)
	}
	_, ix, iy := combined.Max()
	return &Result{
		Estimate:   e.CellCenter(ix, iy),
		Likelihood: combined,
	}, nil
}

// LocateRSSI is a signal-strength trilateration baseline (§9.2 context):
// per anchor, the tag distance is inverted from the mean channel
// magnitude using the free-space model |h| = 1/d, then the point
// minimizing the squared range residuals over the grid is reported.
// Multipath fading corrupts |h| directly, which is the weakness the paper
// ascribes to RSSI methods (§2.2).
func (e *Engine) LocateRSSI(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(e.anchors) {
		return nil, fmt.Errorf("core: snapshot has %d anchors, engine %d", s.NumAnchors(), len(e.anchors))
	}
	I := s.NumAnchors()
	active := activeAnchors(s)
	if len(active) < 3 {
		return nil, fmt.Errorf("core: only %d anchors present, need >= 3 for trilateration", len(active))
	}
	ranges := make([]float64, I)
	for _, i := range active {
		var amp float64
		n := 0
		for k := range s.Tag {
			if !s.Present(k, i) {
				continue
			}
			for j := range s.Tag[k][i] {
				amp += cmplx.Abs(s.Tag[k][i][j])
				n++
			}
		}
		amp /= float64(n)
		if amp <= 0 {
			return nil, fmt.Errorf("core: anchor %d has zero RSSI", i)
		}
		ranges[i] = 1 / amp
	}
	// Grid search: maximize the negative residual sum (stored as a
	// likelihood so the Result shape matches the other estimators).
	grid := dsp.NewGrid(e.nx, e.ny)
	best := math.Inf(1)
	bx, by := 0, 0
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			var res float64
			for _, i := range active {
				d := p.Dist(e.anchors[i].Center()) - ranges[i]
				res += d * d
			}
			grid.Set(ix, iy, -res)
			if res < best {
				best, bx, by = res, ix, iy
			}
		}
	}
	return &Result{Estimate: e.CellCenter(bx, by), Likelihood: grid}, nil
}

// checkAlpha validates alpha dimensions against the engine and, for
// partial (degraded-mode) alphas, that enough anchors survive to
// triangulate at all.
func (e *Engine) checkAlpha(a *Alpha) error {
	if a.NumAnchors() != len(e.anchors) {
		return fmt.Errorf("core: alpha has %d anchors, engine %d", a.NumAnchors(), len(e.anchors))
	}
	if a.NumBands() == 0 || a.NumAntennas() == 0 {
		return fmt.Errorf("core: empty alpha")
	}
	if a.Have != nil {
		if n := len(a.PresentAnchors()); n < 2 {
			return fmt.Errorf("core: only %d anchors usable in partial snapshot, need >= 2", n)
		}
	}
	return nil
}

// LocateCTE is a Bluetooth 5.1 direction-finding estimator (extension
// beyond the paper, which predates CTE): every anchor supplies the
// per-antenna relative channels recovered from one constant-tone
// acquisition on a single band; the strongest Bartlett direction per
// anchor is triangulated like LocateAoA. CTE gives BLE a clean,
// standardized angle measurement — but a single 2 MHz tone carries no
// usable distance information, so the estimator inherits AoA's
// multipath blindness, which is the comparison's point.
func (e *Engine) LocateCTE(freqHz float64, perAnchor [][]complex128) (*Result, error) {
	if len(perAnchor) != len(e.anchors) {
		return nil, fmt.Errorf("core: CTE data for %d anchors, engine has %d", len(perAnchor), len(e.anchors))
	}
	values := [][][]complex128{perAnchor} // one band
	freqs := []float64{freqHz}
	I := len(e.anchors)
	bearings := make([]float64, I)
	for i := 0; i < I; i++ {
		if len(perAnchor[i]) < 2 {
			return nil, fmt.Errorf("core: anchor %d has %d CTE antennas", i, len(perAnchor[i]))
		}
		spec := e.angleSpectrum(freqs, values, nil, i)
		bearings[i] = e.thetas[dsp.ArgMax(spec)]
	}
	grid := dsp.NewGrid(e.nx, e.ny)
	best := math.Inf(1)
	bx, by := 0, 0
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			var res float64
			for i, a := range e.anchors {
				d := geom.WrapAngle(a.AngleTo(p) - bearings[i])
				res += d * d
			}
			grid.Set(ix, iy, -res)
			if res < best {
				best, bx, by = res, ix, iy
			}
		}
	}
	return &Result{Estimate: e.CellCenter(bx, by), Likelihood: grid}, nil
}
