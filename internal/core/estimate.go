package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"bloc/internal/csi"
	"bloc/internal/dsp"
	"bloc/internal/geom"
)

// Result is a localization outcome.
type Result struct {
	Estimate   geom.Point  // the reported tag position
	Candidates []Candidate // every scored likelihood peak
	Likelihood *dsp.Grid   // the combined XY likelihood (shared, do not mutate)

	// Gated reports whether the fix was served by the prior-gated
	// coarse-to-fine path (LocateOpts with a Prior); its Likelihood is
	// then zero outside the refined tiles.
	Gated bool
	// Fallback names the gate-refusal reason (FallbackDisagree,
	// FallbackLowConf, FallbackNoPeaks) when a gated attempt fell back
	// to the full grid; empty for gated successes and fixes that never
	// attempted the gate.
	Fallback string
	// TilesRefined / TilesTotal report, for gated fixes, how many
	// refinement tiles were evaluated out of how many the room has.
	TilesRefined, TilesTotal int
}

// Locate runs the full BLoc pipeline on a snapshot against the paper's
// hard-wired reference anchor 0. See LocateRef.
func (e *Engine) Locate(s *csi.Snapshot) (*Result, error) {
	return e.LocateRef(s, 0)
}

// LocateRef runs the full BLoc pipeline on a snapshot against an elected
// reference anchor: offset correction (CorrectRef), joint likelihood,
// peak scoring with Eq. 18. The corrected-channel workspace is drawn
// from the engine's pools, so steady-state calls do not pay Correct's
// nested allocations.
func (e *Engine) LocateRef(s *csi.Snapshot, ref int) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid snapshot: %w", err)
	}
	if ref < 0 || ref >= s.NumAnchors() {
		return nil, fmt.Errorf("core: reference anchor %d out of range [0,%d)", ref, s.NumAnchors())
	}
	box := e.getAlpha(s.NumBands(), s.NumAnchors(), s.NumAntennas())
	a := e.correctInto(s, ref, box)
	res, err := e.locateAlpha(a, bestByScore)
	e.putAlpha(box)
	return res, err
}

// LocateAlpha runs the BLoc pipeline on already-corrected channels.
func (e *Engine) LocateAlpha(a *Alpha) (*Result, error) {
	return e.locateAlpha(a, bestByScore)
}

// locateAlpha is the shared likelihood + peak-selection tail of the BLoc
// estimators; selector picks the winning candidate (Eq. 18 score or the
// §8.7 shortest-distance ablation).
func (e *Engine) locateAlpha(a *Alpha, selector func([]Candidate) (Candidate, bool)) (*Result, error) {
	if err := e.checkAlpha(a); err != nil {
		return nil, err
	}
	grid := e.likelihoodCombined(a)
	cands := e.candidates(grid)
	best, ok := selector(cands)
	if !ok {
		return nil, fmt.Errorf("core: no likelihood peaks found")
	}
	e.statFixes.Add(1)
	e.statFullFixes.Add(1)
	return &Result{Estimate: best.Loc, Candidates: cands, Likelihood: grid}, nil
}

// LocateShortestDistance is the §8.7 ablation: the same likelihood, but
// the direct path is chosen as the peak with the smallest total distance,
// without the entropy/score machinery.
func (e *Engine) LocateShortestDistance(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid snapshot: %w", err)
	}
	box := e.getAlpha(s.NumBands(), s.NumAnchors(), s.NumAntennas())
	a := e.correctInto(s, 0, box)
	res, err := e.locateAlpha(a, bestByShortestDistance)
	e.putAlpha(box)
	return res, err
}

// residualSearch is the shared grid-search triangulation of the baseline
// estimators (AoA, RSSI, CTE): it scans every XY cell, sums res(p, i)
// over the given anchors, stores the negated residual as a likelihood
// surface (so Result keeps the same shape across estimators) and returns
// the residual-minimizing cell's room coordinates. Ties keep the first
// cell in scan order.
func (e *Engine) residualSearch(anchors []int, res func(p geom.Point, anchor int) float64) (*dsp.Grid, geom.Point) {
	grid := dsp.NewGrid(e.nx, e.ny)
	best := math.Inf(1)
	bx, by := 0, 0
	for iy := 0; iy < e.ny; iy++ {
		for ix := 0; ix < e.nx; ix++ {
			p := e.CellCenter(ix, iy)
			var sum float64
			for _, i := range anchors {
				sum += res(p, i)
			}
			grid.Set(ix, iy, -sum)
			if sum < best {
				best, bx, by = sum, ix, iy
			}
		}
	}
	return grid, e.CellCenter(bx, by)
}

// LocateAoA is the paper's baseline (§7, §8.2): AoA-combining in the
// spirit of ArrayTrack/SpotFi. Each anchor estimates one angle of arrival
// — the strongest direction of its angular spectrum (Eq. 15, averaged
// over bands; the least-ToF path selection those Wi-Fi systems use is
// unavailable because BLE's cross-band phase is garbled) — and the
// bearings are triangulated by a least-squares grid search. When any
// anchor locks onto a reflection instead of the direct path, the fix is
// dragged away, which is exactly why this baseline suffers in multipath.
func (e *Engine) LocateAoA(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(e.anchors) {
		return nil, fmt.Errorf("core: snapshot has %d anchors, engine %d", s.NumAnchors(), len(e.anchors))
	}
	I := s.NumAnchors()
	active := activeAnchors(s)
	if len(active) < 2 {
		return nil, fmt.Errorf("core: only %d anchors present, need >= 2 for AoA", len(active))
	}
	bearings := make([]float64, I)
	for _, i := range active {
		spec := e.angleSpectrum(s.Freqs, s.Tag, s.Have, i)
		bearings[i] = e.thetas[dsp.ArgMax(spec)]
	}
	// Triangulate: minimize the sum of squared wrapped angle residuals
	// over the anchors that actually reported.
	grid, est := e.residualSearch(active, func(p geom.Point, i int) float64 {
		d := geom.WrapAngle(e.anchors[i].AngleTo(p) - bearings[i])
		return d * d
	})
	return &Result{Estimate: est, Likelihood: grid}, nil
}

// activeAnchors lists the anchors with at least one present band row.
func activeAnchors(s *csi.Snapshot) []int {
	return s.PresentAnchors(1)
}

// LocateAoASoft is a strengthened variant of the AoA baseline (an
// extension beyond the paper): instead of committing to one bearing per
// anchor, every anchor's full angular spectrum is painted over the XY
// grid and the maps are summed, so secondary lobes still vote. It is used
// by the ablation benches to show how much of BLoc's advantage survives
// against a more generous baseline.
func (e *Engine) LocateAoASoft(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(e.anchors) {
		return nil, fmt.Errorf("core: snapshot has %d anchors, engine %d", s.NumAnchors(), len(e.anchors))
	}
	combined := dsp.NewGrid(e.nx, e.ny)
	for _, i := range activeAnchors(s) {
		spec := e.angleSpectrum(s.Freqs, s.Tag, s.Have, i)
		xy := e.angleSpectrumToXY(spec, i, 0)
		if e.cfg.NormalizePerAnchor {
			xy.Normalize()
		}
		combined.AddGrid(xy)
	}
	_, ix, iy := combined.Max()
	return &Result{
		Estimate:   e.CellCenter(ix, iy),
		Likelihood: combined,
	}, nil
}

// LocateRSSI is a signal-strength trilateration baseline (§9.2 context):
// per anchor, the tag distance is inverted from the mean channel
// magnitude using the free-space model |h| = 1/d, then the point
// minimizing the squared range residuals over the grid is reported.
// Multipath fading corrupts |h| directly, which is the weakness the paper
// ascribes to RSSI methods (§2.2).
func (e *Engine) LocateRSSI(s *csi.Snapshot) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.NumAnchors() != len(e.anchors) {
		return nil, fmt.Errorf("core: snapshot has %d anchors, engine %d", s.NumAnchors(), len(e.anchors))
	}
	I := s.NumAnchors()
	active := activeAnchors(s)
	if len(active) < 3 {
		return nil, fmt.Errorf("core: only %d anchors present, need >= 3 for trilateration", len(active))
	}
	ranges := make([]float64, I)
	usable := make([]int, 0, len(active))
	for _, i := range active {
		var amp float64
		n := 0
		for k := range s.Tag {
			if !s.Present(k, i) {
				continue
			}
			for j := range s.Tag[k][i] {
				m := cmplx.Abs(s.Tag[k][i][j])
				if math.IsNaN(m) || math.IsInf(m, 0) {
					continue // corrupt tone: keep it out of the mean
				}
				amp += m
				n++
			}
		}
		if n == 0 {
			continue // anchor reported nothing finite
		}
		amp /= float64(n)
		// The free-space inversion 1/amp needs a strictly positive,
		// finite magnitude; a zero/denormal amp would put an Inf range
		// into the residual search and poison the grid argmax.
		if amp < refToneFloor || math.IsInf(amp, 0) {
			continue
		}
		ranges[i] = 1 / amp
		usable = append(usable, i)
	}
	if len(usable) < 3 {
		return nil, fmt.Errorf("core: only %d anchors with usable RSSI, need >= 3 for trilateration", len(usable))
	}
	// Grid search: maximize the negative range-residual sum.
	grid, est := e.residualSearch(usable, func(p geom.Point, i int) float64 {
		d := p.Dist(e.anchors[i].Center()) - ranges[i]
		return d * d
	})
	return &Result{Estimate: est, Likelihood: grid}, nil
}

// checkAlpha validates alpha dimensions against the engine and, for
// partial (degraded-mode) alphas, that enough anchors survive to
// triangulate at all.
func (e *Engine) checkAlpha(a *Alpha) error {
	if a.NumAnchors() != len(e.anchors) {
		return fmt.Errorf("core: alpha has %d anchors, engine %d", a.NumAnchors(), len(e.anchors))
	}
	if a.NumBands() == 0 || a.NumAntennas() == 0 {
		return fmt.Errorf("core: empty alpha")
	}
	if a.Ref < 0 || a.Ref >= len(e.anchors) {
		return fmt.Errorf("core: alpha reference %d out of range [0,%d)", a.Ref, len(e.anchors))
	}
	if a.Have != nil {
		if n := len(a.PresentAnchors()); n < 2 {
			return fmt.Errorf("core: only %d anchors usable in partial snapshot, need >= 2", n)
		}
	}
	return nil
}

// LocateCTE is a Bluetooth 5.1 direction-finding estimator (extension
// beyond the paper, which predates CTE): every anchor supplies the
// per-antenna relative channels recovered from one constant-tone
// acquisition on a single band; the strongest Bartlett direction per
// anchor is triangulated like LocateAoA. CTE gives BLE a clean,
// standardized angle measurement — but a single 2 MHz tone carries no
// usable distance information, so the estimator inherits AoA's
// multipath blindness, which is the comparison's point.
func (e *Engine) LocateCTE(freqHz float64, perAnchor [][]complex128) (*Result, error) {
	if len(perAnchor) != len(e.anchors) {
		return nil, fmt.Errorf("core: CTE data for %d anchors, engine has %d", len(perAnchor), len(e.anchors))
	}
	values := [][][]complex128{perAnchor} // one band
	freqs := []float64{freqHz}
	I := len(e.anchors)
	all := make([]int, I)
	bearings := make([]float64, I)
	for i := 0; i < I; i++ {
		if len(perAnchor[i]) < 2 {
			return nil, fmt.Errorf("core: anchor %d has %d CTE antennas", i, len(perAnchor[i]))
		}
		all[i] = i
		spec := e.angleSpectrum(freqs, values, nil, i)
		bearings[i] = e.thetas[dsp.ArgMax(spec)]
	}
	grid, est := e.residualSearch(all, func(p geom.Point, i int) float64 {
		d := geom.WrapAngle(e.anchors[i].AngleTo(p) - bearings[i])
		return d * d
	})
	return &Result{Estimate: est, Likelihood: grid}, nil
}
