package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(0) … fn(n-1) across min(GOMAXPROCS, n) goroutines
// with dynamic (work-stealing counter) scheduling, so uneven task costs —
// anchors with different projection footprints, θ tiles with different Δ
// spans — still saturate every core. With one processor (or one task) it
// degenerates to an inline loop with zero scheduling overhead, which also
// keeps the single-core fix path allocation-free.
//
// fn must be safe for concurrent invocation on distinct task indices.
func parallelFor(n int, fn func(int)) {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for g := 0; g < w-1; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}
