// Package wifi implements the Wi-Fi CSI substrate the paper holds up as
// the benchmark BLE should reach (§1, §9.1): an 802.11-style 20 MHz OFDM
// PHY whose legacy long training field (L-LTF) yields per-subcarrier
// channel estimates across 52 subcarriers, and a SpotFi-class joint
// angle/time-of-flight estimator [21] that identifies the direct path by
// least relative ToF — the capability BLE lacks natively and BLoc
// recreates with band stitching.
package wifi

import (
	"fmt"
	"math/cmplx"
	"math/rand/v2"

	"bloc/internal/dsp"
	"bloc/internal/rfsim"
)

// OFDM parameters of the 20 MHz legacy PHY.
const (
	// FFTSize is the OFDM FFT length.
	FFTSize = 64
	// NumSubcarriers is the number of used (data+pilot) subcarriers in
	// the L-LTF: indices −26…−1 and +1…+26.
	NumSubcarriers = 52
	// SubcarrierSpacingHz is Δf = 20 MHz / 64.
	SubcarrierSpacingHz = 312500.0
	// CPLen is the cyclic prefix length in samples (800 ns at 20 MHz).
	CPLen = 16
	// SampleRateHz is the baseband rate.
	SampleRateHz = 20e6
)

// lltfSeq is the frequency-domain L-LTF BPSK sequence for subcarriers
// −26…+26 (53 entries including DC = 0), per IEEE 802.11-2016 §17.3.3.
var lltfSeq = [53]float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1,
}

// SubcarrierIndices returns the used subcarrier indices in ascending
// order (−26…−1, +1…+26).
func SubcarrierIndices() []int {
	out := make([]int, 0, NumSubcarriers)
	for k := -26; k <= 26; k++ {
		if k != 0 {
			out = append(out, k)
		}
	}
	return out
}

// SubcarrierFreqs returns the absolute RF frequency of each used
// subcarrier for a carrier at fcHz.
func SubcarrierFreqs(fcHz float64) []float64 {
	idx := SubcarrierIndices()
	out := make([]float64, len(idx))
	for i, k := range idx {
		out[i] = fcHz + float64(k)*SubcarrierSpacingHz
	}
	return out
}

// lltfSymbol returns one time-domain L-LTF symbol (64 samples, no CP).
func lltfSymbol() []complex128 {
	X := make([]complex128, FFTSize)
	for i, k := -26, 0; i <= 26; i, k = i+1, k+1 {
		bin := (i + FFTSize) % FFTSize
		X[bin] = complex(lltfSeq[k], 0)
	}
	return dsp.IFFT(X)
}

// GenerateLTF returns the on-air L-LTF: a double-length cyclic prefix
// followed by two repetitions of the training symbol (160 samples), as in
// the standard.
func GenerateLTF() []complex128 {
	sym := lltfSymbol()
	out := make([]complex128, 0, 2*CPLen+2*FFTSize)
	out = append(out, sym[FFTSize-2*CPLen:]...)
	out = append(out, sym...)
	out = append(out, sym...)
	return out
}

// ChannelFD evaluates the frequency-selective channel at every used
// subcarrier from a multipath path set (the rfsim model of Eq. 2, now
// resolvable because 20 MHz spans the delay spread).
func ChannelFD(paths []rfsim.Path, fcHz float64) []complex128 {
	freqs := SubcarrierFreqs(fcHz)
	out := make([]complex128, len(freqs))
	for i, f := range freqs {
		out[i] = rfsim.ChannelFromPaths(paths, f)
	}
	return out
}

// ApplyChannelLTF passes the L-LTF through a frequency-selective channel:
// each subcarrier is scaled by H[k] (valid because the cyclic prefix of
// 800 ns covers indoor delay spreads), then per-sample AWGN is added.
// sto shifts the waveform by an integer sample count, modeling the
// receiver's packet-detection timing error (which appears to the CSI
// consumer as a linear phase ramp across subcarriers — the distortion
// SpotFi must live with and the reason its ToF is only relative).
// All noise is drawn from the caller's rng — the repo-wide determinism
// contract (enforced by bloc-lint's randdet): identical seeds reproduce
// identical CSI.
func ApplyChannelLTF(h []complex128, sto int, sigma float64, rng *rand.Rand) ([]complex128, error) {
	if len(h) != NumSubcarriers {
		return nil, fmt.Errorf("wifi: %d channel taps, want %d", len(h), NumSubcarriers)
	}
	// Build the received symbol in the frequency domain.
	X := make([]complex128, FFTSize)
	for i := -26; i <= 26; i++ {
		if i == 0 {
			continue
		}
		bin := (i + FFTSize) % FFTSize
		X[bin] = complex(lltfSeq[i+26], 0) * h[subIndexOf(i)]
	}
	sym := dsp.IFFT(X)
	rx := make([]complex128, 0, 2*CPLen+2*FFTSize)
	rx = append(rx, sym[FFTSize-2*CPLen:]...)
	rx = append(rx, sym...)
	rx = append(rx, sym...)
	// Integer sample timing offset: rotate the FFT window start.
	if sto != 0 {
		rx = rotate(rx, sto)
	}
	if sigma > 0 {
		for i := range rx {
			rx[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
	}
	return rx, nil
}

// subIndexOf maps subcarrier index i ∈ [−26, 26]\{0} to its position in
// the used-subcarrier arrays.
func subIndexOf(i int) int {
	if i < 0 {
		return i + 26
	}
	return i + 25
}

// rotate cyclically shifts s by n samples (positive n delays the signal).
func rotate(s []complex128, n int) []complex128 {
	ln := len(s)
	n = ((n % ln) + ln) % ln
	out := make([]complex128, ln)
	copy(out, s[ln-n:])
	copy(out[n:], s[:ln-n])
	return out
}

// EstimateCSI recovers per-subcarrier channel estimates from a received
// L-LTF by averaging the two training symbols and dividing by the known
// sequence — the standard Wi-Fi CSI that [21]-class systems consume.
func EstimateCSI(rx []complex128) ([]complex128, error) {
	if len(rx) != 2*CPLen+2*FFTSize {
		return nil, fmt.Errorf("wifi: L-LTF has %d samples, want %d", len(rx), 2*CPLen+2*FFTSize)
	}
	y1 := dsp.FFT(rx[2*CPLen : 2*CPLen+FFTSize])
	y2 := dsp.FFT(rx[2*CPLen+FFTSize:])
	out := make([]complex128, NumSubcarriers)
	for i := -26; i <= 26; i++ {
		if i == 0 {
			continue
		}
		bin := (i + FFTSize) % FFTSize
		x := complex(lltfSeq[i+26], 0)
		out[subIndexOf(i)] = (y1[bin] + y2[bin]) / (2 * x)
	}
	return out, nil
}

// csiSanity reports gross estimation failure (all-zero CSI).
func csiSanity(h []complex128) error {
	for _, v := range h {
		if cmplx.Abs(v) > 0 {
			return nil
		}
	}
	return fmt.Errorf("wifi: all-zero CSI")
}
