package wifi

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"bloc/internal/geom"
	"bloc/internal/rfsim"
	"bloc/internal/testbed"
)

func TestSubcarrierLayout(t *testing.T) {
	idx := SubcarrierIndices()
	if len(idx) != NumSubcarriers {
		t.Fatalf("got %d subcarriers", len(idx))
	}
	if idx[0] != -26 || idx[25] != -1 || idx[26] != 1 || idx[51] != 26 {
		t.Errorf("layout wrong: %v", idx)
	}
	freqs := SubcarrierFreqs(5.18e9)
	if freqs[0] != 5.18e9-26*SubcarrierSpacingHz {
		t.Errorf("first subcarrier freq %v", freqs[0])
	}
	// 52 used subcarriers span 16.25 MHz.
	if span := freqs[51] - freqs[0]; math.Abs(span-52*SubcarrierSpacingHz) > 1 {
		t.Errorf("span %v", span)
	}
}

func TestLTFStructure(t *testing.T) {
	ltf := GenerateLTF()
	if len(ltf) != 2*CPLen+2*FFTSize {
		t.Fatalf("LTF has %d samples", len(ltf))
	}
	// The two training symbols are identical, and the long CP is the tail
	// of the symbol.
	for i := 0; i < FFTSize; i++ {
		if cmplx.Abs(ltf[2*CPLen+i]-ltf[2*CPLen+FFTSize+i]) > 1e-12 {
			t.Fatalf("training symbols differ at %d", i)
		}
	}
	for i := 0; i < 2*CPLen; i++ {
		if cmplx.Abs(ltf[i]-ltf[2*CPLen+FFTSize-2*CPLen+i]) > 1e-12 {
			t.Fatalf("cyclic prefix wrong at %d", i)
		}
	}
}

func TestCSIEstimationRecoversChannel(t *testing.T) {
	// A known frequency-selective channel must be recovered exactly in
	// the noiseless case.
	rng := rand.New(rand.NewPCG(1, 1))
	h := make([]complex128, NumSubcarriers)
	for k := range h {
		h[k] = cmplx.Rect(0.2+0.1*rng.Float64(), rng.Float64()*2*math.Pi)
	}
	rx, err := ApplyChannelLTF(h, 0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCSI(rx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range h {
		if cmplx.Abs(est[k]-h[k]) > 1e-9 {
			t.Fatalf("subcarrier %d: %v != %v", k, est[k], h[k])
		}
	}
}

func TestSTOProducesLinearPhaseRamp(t *testing.T) {
	// An integer sample timing offset appears as a linear phase across
	// subcarriers — the distortion that makes absolute ToF unobservable.
	rng := rand.New(rand.NewPCG(2, 2))
	h := make([]complex128, NumSubcarriers)
	for k := range h {
		h[k] = 1
	}
	rx, err := ApplyChannelLTF(h, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCSI(rx)
	if err != nil {
		t.Fatal(err)
	}
	// Phase slope per subcarrier index should be −2π·sto/64.
	idx := SubcarrierIndices()
	want := -2 * math.Pi * 2 / float64(FFTSize)
	for k := 1; k < len(idx); k++ {
		if idx[k]-idx[k-1] != 1 {
			continue // skip the DC gap
		}
		dphi := cmplx.Phase(est[k] * cmplx.Conj(est[k-1]))
		if math.Abs(dphi-want) > 1e-6 {
			t.Fatalf("phase step %v at %d, want %v", dphi, k, want)
		}
	}
}

func TestChannelFDResolvesMultipath(t *testing.T) {
	// With 20 MHz the CSI varies across subcarriers when two paths exist
	// (frequency-selective fading) — unlike one 2 MHz BLE band.
	paths := []rfsim.Path{
		{Kind: rfsim.PathDirect, Length: 5, Gain: 0.2},
		{Kind: rfsim.PathWall, Length: 19, Gain: 0.1},
	}
	h := ChannelFD(paths, 2.44e9)
	minA, maxA := math.Inf(1), 0.0
	for _, v := range h {
		a := cmplx.Abs(v)
		minA = math.Min(minA, a)
		maxA = math.Max(maxA, a)
	}
	if maxA/minA < 1.5 {
		t.Errorf("channel flat across 20 MHz (%.3f–%.3f) despite 14 m excess path", minA, maxA)
	}
}

func TestJointSpectrumPeaksAtTruth(t *testing.T) {
	env := testbed.CleanEnvironment(41)
	env.WallReflectivity = 0
	dep, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(dep.Anchors, env.Room, 2.44e9)
	if err != nil {
		t.Fatal(err)
	}
	tag := geom.Pt(1.2, 0.4)
	rng := rand.New(rand.NewPCG(41, 41))
	ms, err := Measure(env, dep.Anchors, tag, 2.44e9, 1e-4, rng)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := loc.JointSpectrum(0, ms[0])
	if err != nil {
		t.Fatal(err)
	}
	_, ix, iy := spec.Max()
	gotTheta := loc.thetas[iy]
	wantTheta := dep.Anchors[0].AngleTo(tag)
	if math.Abs(gotTheta-wantTheta) > geom.Rad(4) {
		t.Errorf("joint θ max %.1f°, want %.1f°", geom.Deg(gotTheta), geom.Deg(wantTheta))
	}
	_ = ix
}

func TestLeastToFSelectsDirectUnderMultipath(t *testing.T) {
	// One strong reflector: the joint spectrum has two peaks; the least-τ
	// rule must pick the direct one even when the reflection is stronger.
	env := rfsim.NewEnvironment(testbed.PaperRoom(), 42)
	env.WallReflectivity = 0
	env.AddScatterer(rfsim.Scatterer{Center: geom.Pt(2.2, 2.6), Radius: 0.02, Gain: 8, Facets: 1})
	dep, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(dep.Anchors, env.Room, 2.44e9)
	if err != nil {
		t.Fatal(err)
	}
	tag := geom.Pt(-1.8, -2.2)
	rng := rand.New(rand.NewPCG(42, 42))
	ms, err := Measure(env, dep.Anchors, tag, 2.44e9, 1e-4, rng)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := loc.JointSpectrum(0, ms[0])
	if err != nil {
		t.Fatal(err)
	}
	theta, tau, err := loc.DirectBearing(spec, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := dep.Anchors[0].AngleTo(tag)
	if math.Abs(theta-want) > geom.Rad(6) {
		t.Errorf("direct bearing %.1f°, want %.1f° (τ picked %.0f ns)",
			geom.Deg(theta), geom.Deg(want), tau*1e9)
	}
}

func TestLocateWiFiFreeSpace(t *testing.T) {
	env := testbed.CleanEnvironment(43)
	env.WallReflectivity = 0
	dep, err := testbed.New(env, testbed.Config{Anchors: 4, Antennas: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocalizer(dep.Anchors, env.Room, 2.44e9)
	if err != nil {
		t.Fatal(err)
	}
	tag := geom.Pt(0.9, -0.5)
	rng := rand.New(rand.NewPCG(43, 43))
	ms, err := Measure(env, dep.Anchors, tag, 2.44e9, 1e-4, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loc.Locate(ms)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(tag) > 0.35 {
		t.Errorf("Wi-Fi free-space error %.3f m", p.Dist(tag))
	}
}

func TestLocalizerValidation(t *testing.T) {
	env := testbed.CleanEnvironment(44)
	dep, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLocalizer(dep.Anchors[:1], env.Room, 2.44e9); err == nil {
		t.Error("single AP accepted")
	}
	loc, err := NewLocalizer(dep.Anchors, env.Room, 2.44e9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loc.Locate(nil); err == nil {
		t.Error("measurement-count mismatch accepted")
	}
	if _, err := loc.JointSpectrum(0, Measurement{CSI: [][]complex128{{1}}}); err == nil {
		t.Error("single-antenna CSI accepted")
	}
	if _, err := ApplyChannelLTF(make([]complex128, 5), 0, 0, rand.New(rand.NewPCG(1, 1))); err == nil {
		t.Error("wrong channel length accepted")
	}
	if _, err := EstimateCSI(make([]complex128, 10)); err == nil {
		t.Error("short L-LTF accepted")
	}
}

func BenchmarkJointSpectrum(b *testing.B) {
	env := testbed.PaperEnvironment(45)
	dep, err := testbed.New(env, testbed.Config{Anchors: 2, Antennas: 4, Seed: 45})
	if err != nil {
		b.Fatal(err)
	}
	loc, err := NewLocalizer(dep.Anchors, env.Room, 2.44e9)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(45, 45))
	ms, err := Measure(env, dep.Anchors, geom.Pt(0.5, 0.5), 2.44e9, 1e-3, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loc.JointSpectrum(0, ms[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateCSI(b *testing.B) {
	rng := rand.New(rand.NewPCG(46, 46))
	h := make([]complex128, NumSubcarriers)
	for k := range h {
		h[k] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	rx, err := ApplyChannelLTF(h, 1, 1e-3, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateCSI(rx); err != nil {
			b.Fatal(err)
		}
	}
}
