package wifi

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand/v2"

	"bloc/internal/dsp"
	"bloc/internal/geom"
	"bloc/internal/rfsim"
)

// SpotFi-class localization [21]: each access point computes a joint
// (angle, relative time-of-flight) Bartlett spectrum from its CSI matrix,
// identifies the direct path as the significant peak with the *least*
// relative ToF — possible in Wi-Fi because all 52 subcarriers are
// measured in one packet with a common timing reference — and the
// per-AP direct-path bearings are triangulated. This is exactly the
// "least-ToF based AoA" system the paper compares against (§7) in its
// native habitat.

// Localizer is a SpotFi-style engine for a fixed AP deployment.
type Localizer struct {
	anchors []geom.Array
	room    geom.Rect
	fcHz    float64
	cellM   float64

	thetas []float64
	taus   []float64 // relative ToF grid, seconds
	nx, ny int
}

// NewLocalizer builds the engine. The τ grid spans −0.4…+1.2 µs (STO plus
// indoor excess delays) at 12.5 ns resolution.
func NewLocalizer(anchors []geom.Array, room geom.Rect, fcHz float64) (*Localizer, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("wifi: need at least 2 APs, got %d", len(anchors))
	}
	if room.Width() <= 0 || room.Height() <= 0 {
		return nil, fmt.Errorf("wifi: degenerate room %v", room)
	}
	l := &Localizer{anchors: anchors, room: room, fcHz: fcHz, cellM: 0.05}
	for t := -math.Pi / 2; t <= math.Pi/2+1e-9; t += geom.Rad(1) {
		l.thetas = append(l.thetas, t)
	}
	for tau := -0.4e-6; tau <= 1.2e-6+1e-12; tau += 12.5e-9 {
		l.taus = append(l.taus, tau)
	}
	l.nx = int(math.Ceil(room.Width()/l.cellM)) + 1
	l.ny = int(math.Ceil(room.Height()/l.cellM)) + 1
	return l, nil
}

// Measurement is one AP's CSI matrix: CSI[j][k] for antenna j, used
// subcarrier k.
type Measurement struct {
	CSI [][]complex128
}

// Measure simulates one Wi-Fi CSI acquisition against the shared rfsim
// environment: for every AP, the L-LTF passes through each antenna's
// frequency-selective channel with a per-AP random sample-timing offset
// (±2 samples), a per-AP random LO phase and per-sample AWGN, and the
// receiver re-estimates the CSI. Every random draw comes from the
// caller's seeded rng (the determinism contract randdet enforces), so a
// campaign replays bit-for-bit.
func Measure(env *rfsim.Environment, anchors []geom.Array, tag geom.Point, fcHz, sigma float64, rng *rand.Rand) ([]Measurement, error) {
	out := make([]Measurement, len(anchors))
	for i, a := range anchors {
		sto := rng.IntN(5) - 2
		s, c := math.Sincos(rng.Float64() * 2 * math.Pi)
		lo := complex(c, s)
		csi := make([][]complex128, a.N)
		for j := 0; j < a.N; j++ {
			h := ChannelFD(env.Paths(tag, a.Antenna(j)), fcHz)
			for k := range h {
				h[k] *= lo
			}
			rx, err := ApplyChannelLTF(h, sto, sigma, rng)
			if err != nil {
				return nil, err
			}
			est, err := EstimateCSI(rx)
			if err != nil {
				return nil, err
			}
			if err := csiSanity(est); err != nil {
				return nil, err
			}
			csi[j] = est
		}
		out[i] = Measurement{CSI: csi}
	}
	return out, nil
}

// JointSpectrum computes the (θ, τ) Bartlett spectrum for one AP's CSI
// matrix: W = len(taus) columns, H = len(thetas) rows.
func (l *Localizer) JointSpectrum(ap int, m Measurement) (*dsp.Grid, error) {
	J := len(m.CSI)
	if J < 2 {
		return nil, fmt.Errorf("wifi: AP %d has %d antennas", ap, J)
	}
	spacing := l.anchors[ap].Spacing
	w0 := 2 * math.Pi * l.fcHz / rfsim.SpeedOfLight
	idx := SubcarrierIndices()
	T, D := len(l.thetas), len(l.taus)
	grid := dsp.NewGrid(D, T)
	// Precompute subcarrier steering for τ.
	E := make([][]complex128, len(idx))
	for k := range idx {
		row := make([]complex128, D)
		for d, tau := range l.taus {
			s, c := math.Sincos(2 * math.Pi * float64(idx[k]) * SubcarrierSpacingHz * tau)
			row[d] = complex(c, s)
		}
		E[k] = row
	}
	acc := make([]complex128, D)
	for t, theta := range l.thetas {
		stepS, stepC := math.Sincos(-w0 * spacing * math.Sin(theta))
		step := complex(stepC, stepS)
		for d := range acc {
			acc[d] = 0
		}
		for k := range idx {
			rot := complex(1, 0)
			var b complex128
			for j := 0; j < J; j++ {
				b += m.CSI[j][k] * rot
				rot *= step
			}
			row := E[k]
			for d := 0; d < D; d++ {
				acc[d] += b * row[d]
			}
		}
		out := grid.Data[t*D : (t+1)*D]
		for d := 0; d < D; d++ {
			out[d] = cmplx.Abs(acc[d])
		}
	}
	return grid, nil
}

// DirectBearing extracts the direct path's angle from a joint spectrum:
// among peaks within minFrac of the maximum, the one with the least τ
// wins (the SpotFi least-ToF rule). It returns the bearing and its τ.
func (l *Localizer) DirectBearing(spec *dsp.Grid, minFrac float64) (theta, tau float64, err error) {
	peaks := spec.FindPeaks(minFrac, 4)
	if len(peaks) == 0 {
		return 0, 0, fmt.Errorf("wifi: no peaks in joint spectrum")
	}
	best := peaks[0]
	for _, p := range peaks[1:] {
		if l.taus[p.IX] < l.taus[best.IX] {
			best = p
		}
	}
	return l.thetas[best.IY], l.taus[best.IX], nil
}

// Locate runs the full SpotFi-style pipeline: joint spectra, least-ToF
// direct-path bearings, least-squares triangulation on the XY grid.
func (l *Localizer) Locate(ms []Measurement) (geom.Point, error) {
	if len(ms) != len(l.anchors) {
		return geom.Point{}, fmt.Errorf("wifi: %d measurements for %d APs", len(ms), len(l.anchors))
	}
	bearings := make([]float64, len(ms))
	for i, m := range ms {
		spec, err := l.JointSpectrum(i, m)
		if err != nil {
			return geom.Point{}, err
		}
		theta, _, err := l.DirectBearing(spec, 0.3)
		if err != nil {
			return geom.Point{}, err
		}
		bearings[i] = theta
	}
	best := math.Inf(1)
	var bp geom.Point
	for iy := 0; iy < l.ny; iy++ {
		for ix := 0; ix < l.nx; ix++ {
			p := geom.Pt(l.room.Min.X+float64(ix)*l.cellM, l.room.Min.Y+float64(iy)*l.cellM)
			var res float64
			for i, a := range l.anchors {
				d := geom.WrapAngle(a.AngleTo(p) - bearings[i])
				res += d * d
			}
			if res < best {
				best, bp = res, p
			}
		}
	}
	return bp, nil
}
