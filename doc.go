// Package bloc is a complete reproduction of "BLoc: CSI-based Accurate
// Localization for BLE Tags" (Ayyalasomayajula, Vasisht, Bharadia —
// CoNEXT 2018): a localization system that recovers channel state
// information from standard BLE transmissions, stitches the protocol's 37
// frequency-hopping bands into an 80 MHz virtual aperture, cancels the
// per-hop local-oscillator phase offsets with a collaborative conjugate
// product across anchors, and rejects multipath with a joint
// angle/relative-distance likelihood scored by spatial entropy.
//
// The package exposes the system a deployer would use:
//
//   - System — a configured deployment (room, anchors, engine) that can
//     localize tags either from simulated radio acquisitions or from
//     externally supplied CSI snapshots.
//   - Snapshot — the multi-band, multi-anchor, multi-antenna CSI record
//     the pipeline consumes (and the TCP collection plane transports).
//   - Method — the estimator to run: BLoc itself or one of the paper's
//     comparison baselines.
//
// Everything underneath — the BLE PHY and link layer, the GFSK channel
// sounder, the multipath propagation substrate, the likelihood engine and
// the experiment harness — lives in internal packages; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-vs-reproduction
// results.
//
// # Quick start
//
//	sys, err := bloc.NewSystem(bloc.DefaultOptions())
//	if err != nil { ... }
//	fix, err := sys.Localize(bloc.Pt(1.2, -0.4))  // simulate + localize
//	fmt.Println(fix.Estimate, fix.Error)
//
// See examples/ for runnable scenarios.
package bloc
