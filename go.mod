module bloc

go 1.22
