// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8). Each BenchmarkFigNN runs the corresponding experiment
// on a shared reduced dataset (the paper's 1700 positions shrink to a
// deterministic 24 so `go test -bench=.` stays minutes, not hours — use
// cmd/bloc-bench -positions 1700 for the full-scale run) and reports the
// headline numbers as custom metrics: medians and 90th percentiles in cm,
// named after the scheme they belong to.
package bloc_test

import (
	"sync"
	"testing"

	"bloc"
	"bloc/internal/core"
	"bloc/internal/eval"
	"bloc/internal/geom"
	"bloc/internal/testbed"
)

const benchPositions = 24

var (
	suiteOnce sync.Once
	suite     *eval.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *eval.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = eval.NewSuite(eval.SuiteOptions{Seed: 7, Positions: benchPositions})
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

func cm(meters float64) float64 { return meters * 100 }

// BenchmarkFig4_GFSK regenerates Fig. 4: Gaussian pulse shaping of random
// vs sounding bit patterns. Metric: fraction of samples settled at full
// deviation for each pattern (paper: random never settles, runs do).
func BenchmarkFig4_GFSK(b *testing.B) {
	var r *eval.Fig4Result
	for i := 0; i < b.N; i++ {
		r = eval.Fig4(8)
	}
	settled := func(w []float64) float64 {
		n := 0
		for _, v := range w {
			if v > 0.99 || v < -0.99 {
				n++
			}
		}
		return float64(n) / float64(len(w))
	}
	b.ReportMetric(settled(r.RandomShaped), "settled-random")
	b.ReportMetric(settled(r.SoundingShaped), "settled-sounding")
}

// BenchmarkFig6_LikelihoodMaps regenerates Fig. 6: the angle, hyperbolic
// distance, and combined likelihood maps for one tag. Metric: the
// combined map's localization error in cm.
func BenchmarkFig6_LikelihoodMaps(b *testing.B) {
	s := benchSuite(b)
	tag := geom.Pt(0.6, -0.9)
	var r *eval.Fig6Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig6(tag)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.Estimate.Dist(r.Tag)), "err-cm")
}

// BenchmarkFig8a_CSIStability regenerates Fig. 8a: corrected CSI phase
// across 10 consecutive measurements on 4 subbands. Metric: worst
// per-band phase spread in degrees (paper: visually constant).
func BenchmarkFig8a_CSIStability(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig8aResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig8a(geom.Pt(0.5, 0.5), 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxSpreadDeg, "max-spread-deg")
}

// BenchmarkFig8b_PhaseCorrection regenerates Fig. 8b: phase vs subband
// with and without BLoc's offset cancellation. Metrics: linear-fit R² of
// both profiles (paper: corrected linear, raw random).
func BenchmarkFig8b_PhaseCorrection(b *testing.B) {
	var r *eval.Fig8bResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = eval.Fig8b(5, geom.Pt(0.8, 0.4))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CorrR2, "corrected-r2")
	b.ReportMetric(r.RawR2, "raw-r2")
}

// BenchmarkFig9a_LocalizationCDF regenerates Fig. 9a: BLoc vs the
// AoA-combining baseline over the dataset. Metrics: medians and p90s in
// cm (paper: BLoc 86/170, AoA 242/340).
func BenchmarkFig9a_LocalizationCDF(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig9aResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig9a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.BLoc.Median), "bloc-median-cm")
	b.ReportMetric(cm(r.BLoc.P90), "bloc-p90-cm")
	b.ReportMetric(cm(r.AoA.Median), "aoa-median-cm")
	b.ReportMetric(cm(r.AoA.P90), "aoa-p90-cm")
}

// BenchmarkFig9b_AnchorSweep regenerates Fig. 9b: accuracy with 2, 3 and 4
// anchors. Metrics: BLoc medians per anchor count in cm (paper:
// 86 → 91.5 cm for 4 → 3).
func BenchmarkFig9b_AnchorSweep(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig9bResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig9b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.BLoc[2].Median), "bloc-2anchor-cm")
	b.ReportMetric(cm(r.BLoc[3].Median), "bloc-3anchor-cm")
	b.ReportMetric(cm(r.BLoc[4].Median), "bloc-4anchor-cm")
	b.ReportMetric(cm(r.AoA[4].Median), "aoa-4anchor-cm")
}

// BenchmarkFig9c_AntennaSweep regenerates Fig. 9c: accuracy with 3 vs 4
// antennas per anchor. Metrics: medians per antenna count in cm (paper:
// BLoc 90 cm @3 vs 86 cm @4).
func BenchmarkFig9c_AntennaSweep(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig9cResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig9c()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.BLoc[3].Median), "bloc-3ant-cm")
	b.ReportMetric(cm(r.BLoc[4].Median), "bloc-4ant-cm")
	b.ReportMetric(cm(r.AoA[3].Median), "aoa-3ant-cm")
}

// BenchmarkFig10_Bandwidth regenerates Fig. 10: median error vs stitched
// bandwidth. Metrics: medians at 2/20/40/80 MHz in cm (paper:
// 160/134/110/86).
func BenchmarkFig10_Bandwidth(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig10Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.Stats[2].Median), "2mhz-cm")
	b.ReportMetric(cm(r.Stats[20].Median), "20mhz-cm")
	b.ReportMetric(cm(r.Stats[40].Median), "40mhz-cm")
	b.ReportMetric(cm(r.Stats[80].Median), "80mhz-cm")
}

// BenchmarkFig11_Subsampling regenerates Fig. 11: median error when the
// channel list is stride-subsampled over the full span. Metrics: medians
// for all/half/quarter of the subbands in cm (paper: ≈flat).
func BenchmarkFig11_Subsampling(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig11Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range r.SubbandCounts {
		b.ReportMetric(cm(r.Stats[n].Median), benchName(n))
	}
}

func benchName(n int) string {
	switch {
	case n >= 30:
		return "all-bands-cm"
	case n >= 15:
		return "half-bands-cm"
	default:
		return "quarter-bands-cm"
	}
}

// BenchmarkFig12_MultipathRejection regenerates Fig. 12: BLoc's Eq. 18
// selector vs the naive shortest-distance selector. Metrics: medians in
// cm (paper: 86 vs 195).
func BenchmarkFig12_MultipathRejection(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig12Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.BLoc.Median), "bloc-median-cm")
	b.ReportMetric(cm(r.Shortest.Median), "shortest-median-cm")
}

// BenchmarkFig13_LocationHeatmap regenerates Fig. 13: RMSE binned by tag
// location. Metrics: mean corner-cell vs central-cell RMSE in cm (paper:
// corners worst).
func BenchmarkFig13_LocationHeatmap(b *testing.B) {
	s := benchSuite(b)
	var r *eval.Fig13Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err = s.Fig13(1.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	corner, center := r.CornerVsCenter()
	b.ReportMetric(cm(corner), "corner-rmse-cm")
	b.ReportMetric(cm(center), "center-rmse-cm")
}

// BenchmarkAcquireSnapshot measures one full 37-band CSI acquisition
// (channel-domain) — the per-fix measurement cost.
func BenchmarkAcquireSnapshot(b *testing.B) {
	sys, err := bloc.NewSystem(bloc.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	tag := bloc.Pt(0.7, -0.9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Acquire(tag)
	}
}

// BenchmarkLocateSingleFix measures the full BLoc pipeline on one
// snapshot: correction, joint likelihood over 4 anchors × 37 bands, peak
// scoring.
func BenchmarkLocateSingleFix(b *testing.B) {
	sys, err := bloc.NewSystem(bloc.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	snap := sys.Acquire(bloc.Pt(0.7, -0.9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.LocalizeSnapshot(bloc.MethodBLoc, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrectChannels measures Eq. 10's conjugate-product correction
// alone.
func BenchmarkCorrectChannels(b *testing.B) {
	dep, err := testbed.Paper(1)
	if err != nil {
		b.Fatal(err)
	}
	snap := dep.Sounding(geom.Pt(0.5, 0.5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Correct(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCTE compares Bluetooth 5.1 CTE direction finding
// against BLoc (extension: CTE postdates the paper). Metrics: medians in
// cm for both systems.
func BenchmarkAblationCTE(b *testing.B) {
	var r *eval.CTEResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = eval.AblationCTE(7, benchPositions)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.CTE.Median), "cte-median-cm")
	b.ReportMetric(cm(r.BLoc.Median), "bloc-median-cm")
}

// BenchmarkAblationWiFi compares a SpotFi-class Wi-Fi CSI localizer
// against BLE BLoc in the same room (the benchmark the paper aims at).
func BenchmarkAblationWiFi(b *testing.B) {
	var r *eval.WiFiResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = eval.AblationWiFi(7, benchPositions)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(r.WiFi.Median), "wifi-median-cm")
	b.ReportMetric(cm(r.BLoc.Median), "bloc-median-cm")
	b.ReportMetric(cm(r.BLEAoA.Median), "ble-aoa-median-cm")
}

// BenchmarkAblationInterference measures the §8.6 mechanism: a Wi-Fi
// interferer with and without adaptive channel blacklisting.
func BenchmarkAblationInterference(b *testing.B) {
	var ps []eval.InterferencePoint
	var err error
	for i := 0; i < b.N; i++ {
		ps, err = eval.AblationInterference(7, benchPositions, 6, 0.15)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(ps[0].BLoc.Median), "quiet-cm")
	b.ReportMetric(cm(ps[1].BLoc.Median), "wifi-noafh-cm")
	b.ReportMetric(cm(ps[2].BLoc.Median), "wifi-afh-cm")
}

// BenchmarkAblationMotion measures accuracy for tags moving during the
// ≈280 ms hop cycle.
func BenchmarkAblationMotion(b *testing.B) {
	var ps []eval.MotionPoint
	var err error
	for i := 0; i < b.N; i++ {
		ps, err = eval.AblationMotion(7, benchPositions/2, []float64{0, 1, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cm(ps[0].BLoc.Median), "static-cm")
	b.ReportMetric(cm(ps[1].BLoc.Median), "1ms-cm")
	b.ReportMetric(cm(ps[2].BLoc.Median), "3ms-cm")
}
