package bloc

import (
	"bloc/internal/track"
)

// Tracker smooths a stream of fixes into a trajectory: a constant-
// velocity Kalman filter with Mahalanobis gating, sized for the dense fix
// rate BLE's 40 hop-cycles per second provide (§6 of the paper). Ghost
// fixes that survive the multipath rejection are gated out; persistent
// disagreement (a genuinely moved tag) re-locks the track.
type Tracker struct {
	f *track.Filter
}

// TrackerConfig tunes the filter; zero values select defaults matched to
// a walking tag localized by BLoc.
type TrackerConfig struct {
	ProcessNoise   float64 // maneuver intensity, m²/s³ (default 1)
	MeasurementStd float64 // 1-σ fix error, meters (default 0.5)
	GateChi2       float64 // innovation gate, χ² 2 DoF (default 9.21)
	MaxMisses      int     // gated fixes before re-lock (default 3)
}

// NewTracker builds a tracker.
func NewTracker(cfg TrackerConfig) (*Tracker, error) {
	def := track.DefaultConfig()
	if cfg.ProcessNoise > 0 {
		def.ProcessNoise = cfg.ProcessNoise
	}
	if cfg.MeasurementStd > 0 {
		def.MeasurementStd = cfg.MeasurementStd
	}
	if cfg.GateChi2 > 0 {
		def.GateChi2 = cfg.GateChi2
	}
	if cfg.MaxMisses > 0 {
		def.MaxMisses = cfg.MaxMisses
	}
	f, err := track.New(def)
	if err != nil {
		return nil, err
	}
	return &Tracker{f: f}, nil
}

// Update fuses one fix taken dt seconds after the previous one, returning
// the smoothed position and whether the fix passed the gate.
func (t *Tracker) Update(fix Point, dt float64) (Point, bool, error) {
	return t.f.Update(fix, dt)
}

// Position returns the current track estimate.
func (t *Tracker) Position() Point { return t.f.Position() }

// Speed returns the current speed estimate in m/s.
func (t *Tracker) Speed() float64 { return t.f.Velocity().Norm() }

// Uncertainty returns the 1-σ position uncertainty in meters.
func (t *Tracker) Uncertainty() float64 { return t.f.Uncertainty() }
