# BLoc reproduction build targets.

GO ?= go

.PHONY: all build test race soak chaos chaos-cells chaos-degrade drill overload stress vet lint ci fuzz bench bench-check perf figures figures-full clean

all: vet lint test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short soak: the fault-injection and quorum scenarios repeated under the
# race detector to shake out timing-dependent bugs.
soak:
	$(GO) test -race -count=3 -run 'Soak|Fault|Quorum|Reconnect|Heartbeat' \
		./internal/locserver/ ./internal/anchor/ ./internal/faultnet/

# Chaos soak: the data-quality plane under seeded CSI corruption — the
# faultnet injectors (NaN, stuck tones, CFO drift, silent garbage), the
# quarantine/re-election state machine and the master-death drill, all
# repeated under the race detector. Deterministic: every fault decision
# comes from seeded PCG streams.
chaos:
	$(GO) test -race -count=3 -run 'Corrupter|Quality|Health|Reelection|FaultDrill' \
		./internal/locserver/ ./internal/csi/ ./internal/faultnet/

# Cell-kill chaos drill: the supervised fleet (DESIGN.md §15) under the
# race detector — a cell killed mid-10×-burst by a scheduled panic must
# leave surviving cells bit-identical to a no-fault run, degrade its own
# tags to flagged coarse neighbor fixes while down, warm-restart from
# its last checkpoint inside the backoff budget, and match the injected
# schedule on every restart/panic/breaker counter. Plus the supervisor
# state machine, the per-link circuit breaker, the fleet router, the
# shutdown idempotence regressions and the durable-store concurrency
# drill that back it.
chaos-cells:
	$(GO) test -race -count=1 \
		-run 'ChaosCells|Supervisor|Breaker|Fleet|CellKiller|DrainClose|StoreConcurrent' \
		./internal/locserver/ ./internal/faultnet/ ./internal/durable/

# Degradation-ladder chaos drill (DESIGN.md §16) under the race detector:
# a scripted fault schedule walks a fingerprint-enabled server down every
# rung in order — gated CSI, full CSI, fingerprint, centroid — and the
# drill asserts the served tier, the hysteretic demotion/holdback/
# promotion transitions and the per-tier counters match the injected
# schedule exactly; plus the no-survey control, the overload demotion
# site, the fleet fallback tier + dropped-bucket accounting, the
# downtime TCP ingress regression and the concurrent half-open breaker
# probe contract.
chaos-degrade:
	$(GO) test -race -count=1 -run 'ChaosDegrade' ./internal/locserver/

# Durability drills: the snapshot codec/store suite plus the
# kill-and-restart, snapshot-corruption and graceful-drain scenarios,
# repeated under the race detector (DESIGN.md §11).
drill:
	$(GO) test -race -count=2 ./internal/durable/
	$(GO) test -race -count=2 -run 'Restart|Drain|SnapCorrupt|Restore|NonFinite' \
		./internal/locserver/ ./internal/faultnet/ ./internal/core/ ./internal/track/

# Overload drills: the serving plane under a seeded 10× tag burst with
# slow anchors — admission control, load shedding, deadline budgets and
# the straggler/laggy state machine, repeated under the race detector
# (DESIGN.md §12).
overload:
	$(GO) test -race -count=2 \
		-run 'Overload|Laggy|ServeMode|Shed|Budget|FixQueue|Adaptive|TeardownRace|DelayConn|Burst|Backoff' \
		./internal/locserver/ ./internal/faultnet/ ./internal/anchor/

vet:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$files"; \
		exit 1; \
	fi
	$(GO) vet ./...

# Schedule-perturbation stress: the durability and overload drills plus
# the dedicated stress scenarios, re-run under the race detector across a
# GOMAXPROCS matrix so goroutine interleavings the default schedule never
# produces get exercised (DESIGN.md §13). Override the matrix with e.g.
# `make stress STRESS_PROCS="1 8"`.
STRESS_PROCS ?= 1 2 4
stress:
	@set -e; for gmp in $(STRESS_PROCS); do \
		echo "=== stress: GOMAXPROCS=$$gmp ==="; \
		GOMAXPROCS=$$gmp $(GO) test -race -count=1 \
			-run 'Stress|Overload|TeardownRace|Drain|Restart|FixQueue|Shed|Budget' \
			./internal/locserver/; \
	done

# Domain-aware static analysis: two-phase (package facts, then checks),
# ten analyzers covering units, radians, mutex contracts, float equality,
# goroutine leaks, clock-seam discipline, rand determinism, atomic-field
# consistency, nonblocking-path contracts and condition-variable idioms;
# -unused-ignores keeps the suppression inventory honest. See
# internal/lint and DESIGN.md §8, §13.
lint: build
	$(GO) run ./cmd/bloc-lint -unused-ignores ./...

# Everything CI runs, in CI's order.
ci: vet lint test race soak chaos chaos-cells chaos-degrade drill overload stress

# Native fuzzing smoke pass: the wire protocol and the durable snapshot
# decoder, each over its seed corpus (go test allows one -fuzz package
# per invocation, hence two runs).
fuzz:
	$(GO) test -fuzz=. -fuzztime=10s -run '^$$' ./internal/wire/
	$(GO) test -fuzz=FuzzDecodeSnapshot -fuzztime=10s -run '^$$' ./internal/durable/

# Micro-benchmarks (likelihood kernels + end-to-end fix) and the perf
# report: writes BENCH_3.json with latency, allocation and throughput
# figures for the steady-state fix path.
bench:
	$(GO) test -run '^$$' -bench 'LocateSingleFix|PolarLikelihood$$|PolarToXY$$|^BenchmarkLikelihood$$' -benchmem . ./internal/core/
	$(GO) run ./cmd/bloc-bench -exp perf -bench-out BENCH_3.json

# CI smoke: quick perf measurement compared against the committed report;
# fails on compile breakage or a >2x latency regression.
bench-check:
	$(GO) run ./cmd/bloc-bench -exp perf -perf-fixes 10 -check BENCH_3.json

# Perf smoke: the gated vs full-grid fix micro-benchmarks plus the quick
# regression check against the committed report — gates both the
# full-grid and the tracked (prior-gated) latency at 2x.
perf:
	$(GO) test -run '^$$' -bench 'GatedFix|FullGridFix' -benchmem ./internal/core/
	$(GO) run ./cmd/bloc-bench -exp perf -perf-fixes 10 -check BENCH_3.json

# Every table and figure of the paper at reduced scale (~2 min, 1 core).
figures:
	$(GO) run ./cmd/bloc-bench -out results

# The paper's full 1700-position scale (tens of minutes on 1 core).
figures-full:
	$(GO) run ./cmd/bloc-bench -positions 1700 -out results

clean:
	rm -rf results test_output.txt bench_output.txt
