# BLoc reproduction build targets.

GO ?= go

.PHONY: all build test race vet bench figures figures-full clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/locserver/ ./internal/eval/ ./internal/core/

vet:
	gofmt -l . && $(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Every table and figure of the paper at reduced scale (~2 min, 1 core).
figures:
	$(GO) run ./cmd/bloc-bench -out results

# The paper's full 1700-position scale (tens of minutes on 1 core).
figures-full:
	$(GO) run ./cmd/bloc-bench -positions 1700 -out results

clean:
	rm -rf results test_output.txt bench_output.txt
