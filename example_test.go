package bloc_test

import (
	"fmt"
	"log"

	"bloc"
)

// The basic workflow: build the paper's deployment, localize a tag.
func ExampleSystem_Localize() {
	sys, err := bloc.NewSystem(bloc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fix, err := sys.Localize(bloc.Pt(1.1, -0.7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error below room diagonal: %v\n", fix.Error < 8)
	// Output: error below room diagonal: true
}

// Comparing BLoc against the paper's AoA baseline on one acquisition.
func ExampleSystem_LocalizeWith() {
	sys, err := bloc.NewSystem(bloc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []bloc.Method{bloc.MethodBLoc, bloc.MethodAoA} {
		if _, err := sys.LocalizeWith(m, bloc.Pt(0.5, 0.5)); err != nil {
			log.Fatal(err)
		}
		fmt.Println(m)
	}
	// Output:
	// bloc
	// aoa
}

// Smoothing a fix stream with the constant-velocity tracker.
func ExampleNewTracker() {
	trk, err := bloc.NewTracker(bloc.TrackerConfig{MeasurementStd: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	for _, fix := range []bloc.Point{
		bloc.Pt(1.0, 1.0), bloc.Pt(1.1, 0.9), bloc.Pt(0.9, 1.1),
	} {
		if _, _, err := trk.Update(fix, 0.2); err != nil {
			log.Fatal(err)
		}
	}
	p := trk.Position()
	fmt.Printf("track near (1,1): %v\n", p.Dist(bloc.Pt(1, 1)) < 0.2)
	// Output: track near (1,1): true
}

// Building a custom environment instead of the paper room.
func ExampleNewSystem_customRoom() {
	sys, err := bloc.NewSystem(bloc.Options{
		RoomMin:   bloc.Pt(0, 0),
		RoomMax:   bloc.Pt(8, 5),
		Anchors:   4,
		Antennas:  4,
		Seed:      1,
		PaperRoom: false,
		Scatterers: []bloc.Scatterer{
			{Center: bloc.Pt(6, 4), Radius: 0.3, Gain: 4, Facets: 5},
		},
		Obstacles: []bloc.Obstacle{
			{A: bloc.Pt(3, 2), B: bloc.Pt(5, 2), Attenuation: 0.4},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	min, max := sys.Room()
	fmt.Printf("room %.0fx%.0f m, %d anchors\n", max.X-min.X, max.Y-min.Y, len(sys.AnchorPositions()))
	// Output: room 8x5 m, 4 anchors
}
